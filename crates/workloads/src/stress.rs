//! Simple stressors: CPU-bound event loops (sysbench, Matmul), I/O
//! think-time loops (fio), and a work-item pool (pbzip2, swaptions,
//! raytrace, freqmine).

use crate::common::ThroughputStats;
use guestos::{CpuMask, GuestOs, Platform, Policy, SpawnSpec, TaskAction, TaskId, Workload};
use simcore::SimRng;
use std::cell::RefCell;
use std::rc::Rc;

/// CPU-bound event loop (sysbench archetype): each thread runs fixed-size
/// events back to back; throughput = events/s.
pub struct Stressor {
    threads: usize,
    event_work: f64,
    sched_idle: bool,
    affinity: Option<Vec<usize>>,
    cache_sensitive: bool,
    pause_ns: Option<u64>,
    paused: Vec<bool>,
    tasks: Vec<TaskId>,
    stats: Rc<RefCell<ThroughputStats>>,
}

impl Stressor {
    /// Creates a stressor with `threads` threads and `event_work`
    /// capacity-ns per event.
    pub fn new(threads: usize, event_work: f64) -> (Self, Rc<RefCell<ThroughputStats>>) {
        let stats = ThroughputStats::handle();
        (
            Self {
                threads,
                event_work,
                sched_idle: false,
                affinity: None,
                cache_sensitive: false,
                pause_ns: None,
                paused: Vec::new(),
                tasks: Vec::new(),
                stats: Rc::clone(&stats),
            },
            stats,
        )
    }

    /// Runs the threads at `SCHED_IDLE` (best-effort background load).
    pub fn best_effort(mut self) -> Self {
        self.sched_idle = true;
        self
    }

    /// Pins thread `i` to vCPU `affinity[i % len]`.
    pub fn pinned(mut self, affinity: Vec<usize>) -> Self {
        self.affinity = Some(affinity);
        self
    }

    /// Marks threads cache-sensitive.
    pub fn cache_sensitive(mut self) -> Self {
        self.cache_sensitive = true;
        self
    }

    /// Inserts a short sleep between events (real sysbench briefly yields
    /// between events, which exercises the wake-placement path).
    pub fn with_pause(mut self, ns: u64) -> Self {
        self.pause_ns = Some(ns);
        self
    }
}

impl Workload for Stressor {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for i in 0..self.threads {
            let mut spec = SpawnSpec::normal(nr);
            if self.sched_idle {
                spec = spec.policy(Policy::Idle);
            }
            if let Some(aff) = &self.affinity {
                spec = spec.affinity(CpuMask::single(aff[i % aff.len()]));
            }
            if self.cache_sensitive {
                spec = spec.cache_sensitive();
            }
            let t = guest.spawn(plat, spec);
            self.tasks.push(t);
            self.paused.push(false);
            guest.wake_task(plat, t, None);
        }
    }

    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _token: u64) {}

    fn next_action(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, t: TaskId) -> TaskAction {
        if let Some(pause) = self.pause_ns {
            let i = self.tasks.iter().position(|&x| x == t).expect("own task");
            if !self.paused[i] {
                self.paused[i] = true;
                return TaskAction::Sleep { ns: pause };
            }
            self.paused[i] = false;
        }
        let mut s = self.stats.borrow_mut();
        s.completed += 1;
        s.work_done += self.event_work;
        TaskAction::Compute {
            work: self.event_work,
        }
    }

    fn owns_task(&self, t: TaskId) -> bool {
        self.tasks.contains(&t)
    }

    fn label(&self) -> &str {
        "stressor"
    }
}

// ----------------------------------------------------------------------

/// I/O think-time loop (fio archetype): short compute, then sleep.
pub struct ThinkIo {
    threads: usize,
    compute_work: f64,
    io_ns: u64,
    phase_compute: Vec<bool>,
    tasks: Vec<TaskId>,
    rng: SimRng,
    stats: Rc<RefCell<ThroughputStats>>,
}

impl ThinkIo {
    /// Creates the workload: `compute_work` capacity-ns then `io_ns` sleep,
    /// per cycle and thread.
    pub fn new(
        threads: usize,
        compute_work: f64,
        io_ns: u64,
        rng: SimRng,
    ) -> (Self, Rc<RefCell<ThroughputStats>>) {
        let stats = ThroughputStats::handle();
        (
            Self {
                threads,
                compute_work,
                io_ns,
                phase_compute: Vec::new(),
                tasks: Vec::new(),
                rng,
                stats: Rc::clone(&stats),
            },
            stats,
        )
    }
}

impl Workload for ThinkIo {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for _ in 0..self.threads {
            let t = guest.spawn(plat, SpawnSpec::normal(nr).latency_sensitive());
            self.tasks.push(t);
            self.phase_compute.push(true);
            guest.wake_task(plat, t, None);
        }
    }

    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _token: u64) {}

    fn next_action(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: TaskId) -> TaskAction {
        let i = self.tasks.iter().position(|&x| x == _t).expect("own task");
        if self.phase_compute[i] {
            self.phase_compute[i] = false;
            TaskAction::Compute {
                work: self
                    .rng
                    .normal_at(self.compute_work, 0.2 * self.compute_work, 1.0),
            }
        } else {
            self.phase_compute[i] = true;
            let mut s = self.stats.borrow_mut();
            s.completed += 1;
            s.work_done += self.compute_work;
            drop(s);
            TaskAction::Sleep {
                ns: self.rng.exp(self.io_ns as f64).max(1.0) as u64,
            }
        }
    }

    fn owns_task(&self, t: TaskId) -> bool {
        self.tasks.contains(&t)
    }

    fn label(&self) -> &str {
        "think-io"
    }
}

// ----------------------------------------------------------------------

/// Work-item pool (pbzip2 / swaptions / raytrace archetype): `items` chunks
/// of `item_work` each, `threads` workers; execution time is the metric.
pub struct TaskQueue {
    threads: usize,
    items_left: u64,
    total_items: u64,
    item_work: f64,
    tasks: Vec<TaskId>,
    busy: Vec<bool>,
    rng: SimRng,
    finished: bool,
    stats: Rc<RefCell<ThroughputStats>>,
}

impl TaskQueue {
    /// Creates the pool workload.
    pub fn new(
        threads: usize,
        items: u64,
        item_work: f64,
        rng: SimRng,
    ) -> (Self, Rc<RefCell<ThroughputStats>>) {
        let stats = ThroughputStats::handle();
        (
            Self {
                threads,
                items_left: items,
                total_items: items,
                item_work,
                tasks: Vec::new(),
                busy: Vec::new(),
                rng,
                finished: false,
                stats: Rc::clone(&stats),
            },
            stats,
        )
    }
}

impl Workload for TaskQueue {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for _ in 0..self.threads {
            let t = guest.spawn(plat, SpawnSpec::normal(nr));
            self.tasks.push(t);
            self.busy.push(false);
            guest.wake_task(plat, t, None);
        }
    }

    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _token: u64) {}

    fn next_action(&mut self, _g: &mut GuestOs, plat: &mut dyn Platform, t: TaskId) -> TaskAction {
        let i = self.tasks.iter().position(|&x| x == t).expect("own task");
        if self.busy[i] {
            self.busy[i] = false;
            let mut s = self.stats.borrow_mut();
            s.completed += 1;
            s.work_done += self.item_work;
            if s.completed >= self.total_items {
                s.finished_at = Some(plat.now());
                drop(s);
                self.finished = true;
            }
        }
        if self.items_left > 0 {
            self.items_left -= 1;
            self.busy[i] = true;
            TaskAction::Compute {
                work: self
                    .rng
                    .normal_at(self.item_work, 0.2 * self.item_work, 1.0),
            }
        } else {
            TaskAction::Exit
        }
    }

    fn finished(&self) -> bool {
        self.finished
    }

    fn owns_task(&self, t: TaskId) -> bool {
        self.tasks.contains(&t)
    }

    fn label(&self) -> &str {
        "task-queue"
    }
}
