//! Workload generators: the paper's benchmark suite as parameterised
//! archetypes.
//!
//! The evaluation (paper §5.1) draws on 34 benchmarks: 8 Tailbench
//! latency-critical apps, 10 PARSEC and 11 SPLASH-2x parallel programs,
//! Nginx, Pbzip2, plus the hackbench/fio/sysbench microbenchmarks. Since
//! the binaries cannot run inside a scheduling simulator, each is modelled
//! by the archetype that captures its scheduler-relevant behaviour:
//!
//! | archetype | module | captures |
//! |---|---|---|
//! | open-loop request server | [`latency`] | small-task wakeup latency (Tailbench, Nginx) |
//! | barrier-parallel (blocking or spinning) | [`parallel`] | data-parallel phases, LHP sensitivity |
//! | lock-parallel | [`parallel`] | critical-section serialization |
//! | pipeline | [`pipeline`] | producer/consumer wake chains (dedup, x264) |
//! | message pairs | [`msgpairs`] | wakeup storms and locality (hackbench) |
//! | stressor / think-I/O / task queue | [`stress`] | CPU-bound loops, I/O cycles, work pools |
//!
//! [`suite::build`] maps each benchmark name to its instance.

pub mod adversary;
pub mod combinators;
pub mod common;
pub mod latency;
pub mod msgpairs;
pub mod parallel;
pub mod pipeline;
pub mod stress;
pub mod suite;

pub use adversary::{Adversary, AttackAction, AttackKind, AttackPlan, AttackSpec, ATTACK_KINDS};
pub use combinators::{DelayedWorkload, MultiWorkload};
pub use common::{work_ms, work_us, LatencyStats, ThroughputStats};
pub use latency::{LatencyServer, LatencyServerCfg};
pub use msgpairs::{MsgPairs, MsgPairsCfg};
pub use parallel::{BarrierCfg, BarrierParallel, LockCfg, LockParallel};
pub use pipeline::{Pipeline, PipelineCfg, StageCfg};
pub use stress::{Stressor, TaskQueue, ThinkIo};
pub use suite::{
    build, build_latency, build_loaded, is_latency_bench, Handle, LATENCY_BENCHES,
    THROUGHPUT_BENCHES,
};
