//! Pipeline workloads (dedup, ferret, x264 archetype).
//!
//! Items flow through compute stages connected by queues; each stage has
//! its own worker pool. Stage imbalance plus cross-stage wakeups make
//! pipelines sensitive to runqueue latency and LLC locality.

use crate::common::ThroughputStats;
use guestos::{GuestOs, Platform, SpawnSpec, TaskAction, TaskId, TaskState, Workload};
use simcore::SimRng;
use std::cell::RefCell;
use std::rc::Rc;

/// One pipeline stage.
#[derive(Debug, Clone)]
pub struct StageCfg {
    /// Worker tasks in this stage.
    pub workers: usize,
    /// Work per item (capacity-ns).
    pub work: f64,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineCfg {
    /// The stages, in order.
    pub stages: Vec<StageCfg>,
    /// Total items to push through.
    pub items: u64,
    /// Communication group for all workers (stages exchange data).
    pub comm_group: Option<u32>,
    /// Tag workers latency-sensitive so bvs places their wakeups (the
    /// items are small and the stages block on each other constantly).
    pub latency_sensitive: bool,
    /// Closed-loop in-flight window: at most this many items circulate at
    /// once, and a completed item immediately re-enters stage 0. Throughput
    /// becomes bound by the per-item critical path (service plus wake
    /// latency) instead of stage saturation, so workers stay small under
    /// PELT while slower service still costs completions. `None` keeps the
    /// batch behaviour (all items enqueued upfront).
    pub window: Option<u64>,
}

impl PipelineCfg {
    /// A pipeline with the given `(workers, work)` stages and item count.
    pub fn new(stages: Vec<(usize, f64)>, items: u64) -> Self {
        Self {
            stages: stages
                .into_iter()
                .map(|(workers, work)| StageCfg { workers, work })
                .collect(),
            items,
            comm_group: None,
            latency_sensitive: false,
            window: None,
        }
    }

    /// Limits the in-flight items to a closed-loop window (completed items
    /// recycle into stage 0).
    pub fn with_window(mut self, n: u64) -> Self {
        self.window = Some(n);
        self
    }

    /// Tags all workers with a communication group.
    pub fn with_comm_group(mut self, g: u32) -> Self {
        self.comm_group = Some(g);
        self
    }

    /// Tags all workers latency-sensitive (bvs places their wakeups).
    pub fn with_latency_sensitive(mut self) -> Self {
        self.latency_sensitive = true;
        self
    }
}

/// The pipeline workload.
pub struct Pipeline {
    cfg: PipelineCfg,
    rng: SimRng,
    stats: Rc<RefCell<ThroughputStats>>,
    /// Worker tasks per stage.
    workers: Vec<Vec<TaskId>>,
    /// Pending item counts per stage queue.
    queues: Vec<u64>,
    /// Whether a worker is currently processing an item.
    busy: Vec<Vec<bool>>,
    /// Per-stage rotating wake cursor (window mode): spreads wakeups over
    /// the stage's workers so no single worker accumulates all the load.
    rr: Vec<usize>,
    finished: bool,
    exited: u64,
}

impl Pipeline {
    /// Creates the workload and its statistics handle.
    pub fn new(cfg: PipelineCfg, rng: SimRng) -> (Self, Rc<RefCell<ThroughputStats>>) {
        let stats = ThroughputStats::handle();
        let queues = {
            let mut q = vec![0u64; cfg.stages.len()];
            q[0] = cfg.window.map_or(cfg.items, |w| w.min(cfg.items));
            q
        };
        let busy = cfg.stages.iter().map(|s| vec![false; s.workers]).collect();
        let rr = vec![0usize; cfg.stages.len()];
        (
            Self {
                cfg,
                rng,
                stats: Rc::clone(&stats),
                workers: Vec::new(),
                queues,
                busy,
                rr,
                finished: false,
                exited: 0,
            },
            stats,
        )
    }

    fn locate(&self, t: TaskId) -> Option<(usize, usize)> {
        for (s, stage) in self.workers.iter().enumerate() {
            if let Some(w) = stage.iter().position(|&x| x == t) {
                return Some((s, w));
            }
        }
        None
    }

    fn stage_work(&mut self, s: usize) -> f64 {
        let base = self.cfg.stages[s].work;
        self.rng.normal_at(base, 0.15 * base, 1.0)
    }

    /// All items delivered and nothing in flight?
    fn drained(&self) -> bool {
        self.stats.borrow().completed >= self.cfg.items
    }

    /// Wakes one blocked worker of `stage`. Batch mode takes the first
    /// blocked worker (the original behaviour); window mode rotates a
    /// per-stage cursor so wakeups spread across the pool.
    fn wake_stage(
        &mut self,
        guest: &mut GuestOs,
        plat: &mut dyn Platform,
        stage: usize,
        waker: Option<guestos::VcpuId>,
    ) {
        let pool = &self.workers[stage];
        let n = pool.len();
        let start = if self.cfg.window.is_some() {
            self.rr[stage] % n.max(1)
        } else {
            0
        };
        let blocked = (0..n)
            .map(|i| (start + i) % n)
            .find(|&i| matches!(guest.kern.task(pool[i]).state, TaskState::Blocked));
        if let Some(i) = blocked {
            let t = pool[i];
            if self.cfg.window.is_some() {
                self.rr[stage] = i + 1;
            }
            guest.wake_task(plat, t, waker);
        }
    }
}

impl Workload for Pipeline {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for stage in &self.cfg.stages {
            let mut tasks = Vec::new();
            for _ in 0..stage.workers {
                let mut spec = SpawnSpec::normal(nr);
                if let Some(g) = self.cfg.comm_group {
                    spec = spec.comm_group(g);
                }
                if self.cfg.latency_sensitive {
                    spec = spec.latency_sensitive();
                }
                let t = guest.spawn(plat, spec);
                tasks.push(t);
                guest.wake_task(plat, t, None);
            }
            self.workers.push(tasks);
        }
    }

    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _token: u64) {}

    fn next_action(
        &mut self,
        guest: &mut GuestOs,
        plat: &mut dyn Platform,
        t: TaskId,
    ) -> TaskAction {
        let Some((s, w)) = self.locate(t) else {
            return TaskAction::Exit;
        };
        // Finish the in-flight item: push downstream (or complete).
        if self.busy[s][w] {
            self.busy[s][w] = false;
            if s + 1 < self.cfg.stages.len() {
                self.queues[s + 1] += 1;
                // Wake one blocked downstream worker.
                let waker = guest.kern.task(t).state.vcpu();
                self.wake_stage(guest, plat, s + 1, waker);
            } else {
                let mut st = self.stats.borrow_mut();
                st.completed += 1;
                st.work_done += self.cfg.stages[s].work;
                let done = st.completed >= self.cfg.items;
                drop(st);
                // Window mode: the completed item re-enters stage 0.
                if self.cfg.window.is_some() && !done {
                    self.queues[0] += 1;
                    let waker = guest.kern.task(t).state.vcpu();
                    self.wake_stage(guest, plat, 0, waker);
                }
                if done {
                    self.stats.borrow_mut().finished_at = Some(plat.now());
                    self.finished = true;
                    // Wake everyone so they can exit.
                    let all: Vec<TaskId> = self.workers.iter().flatten().copied().collect();
                    for task in all {
                        if matches!(guest.kern.task(task).state, TaskState::Blocked) {
                            guest.wake_task(plat, task, None);
                        }
                    }
                }
            }
        }
        if self.finished && self.drained() {
            self.exited += 1;
            return TaskAction::Exit;
        }
        // Pull the next item for this stage.
        if self.queues[s] > 0 {
            self.queues[s] -= 1;
            self.busy[s][w] = true;
            let work = self.stage_work(s);
            TaskAction::Compute { work }
        } else if self.finished {
            TaskAction::Exit
        } else {
            TaskAction::Block
        }
    }

    fn finished(&self) -> bool {
        self.finished
    }

    fn owns_task(&self, t: TaskId) -> bool {
        self.locate(t).is_some()
    }

    fn label(&self) -> &str {
        "pipeline"
    }
}
