//! Pipeline workloads (dedup, ferret, x264 archetype).
//!
//! Items flow through compute stages connected by queues; each stage has
//! its own worker pool. Stage imbalance plus cross-stage wakeups make
//! pipelines sensitive to runqueue latency and LLC locality.

use crate::common::ThroughputStats;
use guestos::{GuestOs, Platform, SpawnSpec, TaskAction, TaskId, TaskState, Workload};
use simcore::SimRng;
use std::cell::RefCell;
use std::rc::Rc;

/// One pipeline stage.
#[derive(Debug, Clone)]
pub struct StageCfg {
    /// Worker tasks in this stage.
    pub workers: usize,
    /// Work per item (capacity-ns).
    pub work: f64,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineCfg {
    /// The stages, in order.
    pub stages: Vec<StageCfg>,
    /// Total items to push through.
    pub items: u64,
    /// Communication group for all workers (stages exchange data).
    pub comm_group: Option<u32>,
}

impl PipelineCfg {
    /// A pipeline with the given `(workers, work)` stages and item count.
    pub fn new(stages: Vec<(usize, f64)>, items: u64) -> Self {
        Self {
            stages: stages
                .into_iter()
                .map(|(workers, work)| StageCfg { workers, work })
                .collect(),
            items,
            comm_group: None,
        }
    }

    /// Tags all workers with a communication group.
    pub fn with_comm_group(mut self, g: u32) -> Self {
        self.comm_group = Some(g);
        self
    }
}

/// The pipeline workload.
pub struct Pipeline {
    cfg: PipelineCfg,
    rng: SimRng,
    stats: Rc<RefCell<ThroughputStats>>,
    /// Worker tasks per stage.
    workers: Vec<Vec<TaskId>>,
    /// Pending item counts per stage queue.
    queues: Vec<u64>,
    /// Whether a worker is currently processing an item.
    busy: Vec<Vec<bool>>,
    finished: bool,
    exited: u64,
}

impl Pipeline {
    /// Creates the workload and its statistics handle.
    pub fn new(cfg: PipelineCfg, rng: SimRng) -> (Self, Rc<RefCell<ThroughputStats>>) {
        let stats = ThroughputStats::handle();
        let queues = {
            let mut q = vec![0u64; cfg.stages.len()];
            q[0] = cfg.items;
            q
        };
        let busy = cfg.stages.iter().map(|s| vec![false; s.workers]).collect();
        (
            Self {
                cfg,
                rng,
                stats: Rc::clone(&stats),
                workers: Vec::new(),
                queues,
                busy,
                finished: false,
                exited: 0,
            },
            stats,
        )
    }

    fn locate(&self, t: TaskId) -> Option<(usize, usize)> {
        for (s, stage) in self.workers.iter().enumerate() {
            if let Some(w) = stage.iter().position(|&x| x == t) {
                return Some((s, w));
            }
        }
        None
    }

    fn stage_work(&mut self, s: usize) -> f64 {
        let base = self.cfg.stages[s].work;
        self.rng.normal_at(base, 0.15 * base, 1.0)
    }

    /// All items delivered and nothing in flight?
    fn drained(&self) -> bool {
        self.stats.borrow().completed >= self.cfg.items
    }
}

impl Workload for Pipeline {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let nr = guest.kern.cfg.nr_vcpus;
        for stage in &self.cfg.stages {
            let mut tasks = Vec::new();
            for _ in 0..stage.workers {
                let mut spec = SpawnSpec::normal(nr);
                if let Some(g) = self.cfg.comm_group {
                    spec = spec.comm_group(g);
                }
                let t = guest.spawn(plat, spec);
                tasks.push(t);
                guest.wake_task(plat, t, None);
            }
            self.workers.push(tasks);
        }
    }

    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _token: u64) {}

    fn next_action(
        &mut self,
        guest: &mut GuestOs,
        plat: &mut dyn Platform,
        t: TaskId,
    ) -> TaskAction {
        let Some((s, w)) = self.locate(t) else {
            return TaskAction::Exit;
        };
        // Finish the in-flight item: push downstream (or complete).
        if self.busy[s][w] {
            self.busy[s][w] = false;
            if s + 1 < self.cfg.stages.len() {
                self.queues[s + 1] += 1;
                // Wake one blocked downstream worker.
                let waker = guest.kern.task(t).state.vcpu();
                if let Some(&idle) = self.workers[s + 1]
                    .iter()
                    .find(|&&x| matches!(guest.kern.task(x).state, TaskState::Blocked))
                {
                    guest.wake_task(plat, idle, waker);
                }
            } else {
                let mut st = self.stats.borrow_mut();
                st.completed += 1;
                st.work_done += self.cfg.stages[s].work;
                if st.completed >= self.cfg.items {
                    st.finished_at = Some(plat.now());
                    drop(st);
                    self.finished = true;
                    // Wake everyone so they can exit.
                    let all: Vec<TaskId> = self.workers.iter().flatten().copied().collect();
                    for task in all {
                        if matches!(guest.kern.task(task).state, TaskState::Blocked) {
                            guest.wake_task(plat, task, None);
                        }
                    }
                }
            }
        }
        if self.finished && self.drained() {
            self.exited += 1;
            return TaskAction::Exit;
        }
        // Pull the next item for this stage.
        if self.queues[s] > 0 {
            self.queues[s] -= 1;
            self.busy[s][w] = true;
            let work = self.stage_work(s);
            TaskAction::Compute { work }
        } else if self.finished {
            TaskAction::Exit
        } else {
            TaskAction::Block
        }
    }

    fn finished(&self) -> bool {
        self.finished
    }

    fn owns_task(&self, t: TaskId) -> bool {
        self.locate(t).is_some()
    }

    fn label(&self) -> &str {
        "pipeline"
    }
}
