//! The benchmark suite: the paper's 34 workloads as archetype instances.
//!
//! Each benchmark name maps to an archetype with parameters chosen to
//! reflect its published character — synchronization intensity, task size,
//! communication pattern — with service times taken from the paper where it
//! states them (Masstree's ≈ 0.36 ms service time, Table 3). Absolute
//! constants are calibrated for the simulator's reference core, not the
//! authors' Xeons; the *relative* behaviour (which benchmarks are
//! sync-intensive, which tasks are small) is what the experiments depend
//! on.

use crate::common::{work_ms, LatencyStats, ThroughputStats};
use crate::latency::{LatencyServer, LatencyServerCfg};
use crate::msgpairs::{MsgPairs, MsgPairsCfg};
use crate::parallel::{BarrierCfg, BarrierParallel, LockCfg, LockParallel};
use crate::pipeline::{Pipeline, PipelineCfg};
use crate::stress::{Stressor, TaskQueue, ThinkIo};
use guestos::Workload;
use simcore::{SimRng, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared statistics handle of a built benchmark.
pub enum Handle {
    /// Latency-server statistics.
    Latency(Rc<RefCell<LatencyStats>>),
    /// Throughput statistics.
    Throughput(Rc<RefCell<ThroughputStats>>),
}

impl Handle {
    /// 95th-percentile end-to-end latency, if this is a latency benchmark.
    pub fn p95_ns(&self) -> Option<u64> {
        match self {
            Handle::Latency(s) => Some(s.borrow().e2e.p95()),
            Handle::Throughput(_) => None,
        }
    }

    /// Completed units (requests / rounds / items / messages).
    pub fn completed(&self) -> u64 {
        match self {
            Handle::Latency(s) => s.borrow().completed,
            Handle::Throughput(s) => s.borrow().completed,
        }
    }

    /// Completion rate per second over the run (uses the workload's own
    /// finish time when it completed early).
    pub fn rate(&self, duration: SimTime) -> f64 {
        match self {
            Handle::Latency(s) => s.borrow().throughput(duration),
            Handle::Throughput(s) => s.borrow().rate(duration),
        }
    }

    /// A single performance score: completion rate for throughput
    /// benchmarks, inverse p95 latency for latency benchmarks — in both
    /// cases, higher is better.
    pub fn score(&self, duration: SimTime) -> f64 {
        match self {
            Handle::Latency(s) => {
                let p95 = s.borrow().e2e.p95().max(1);
                1e9 / p95 as f64
            }
            Handle::Throughput(_) => self.rate(duration),
        }
    }
}

/// All benchmark names, grouped as the paper's figures group them.
pub const THROUGHPUT_BENCHES: &[&str] = &[
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "facesim",
    "fluidanimate",
    "freqmine",
    "streamcluster",
    "swaptions",
    "x264",
    "barnes",
    "fft",
    "lu_cb",
    "lu_ncb",
    "ocean_cp",
    "ocean_ncp",
    "radiosity",
    "radix",
    "raytrace",
    "volrend",
    "water_spatial",
    "pbzip2",
    "nginx",
];

/// Latency-sensitive benchmarks (Tailbench).
pub const LATENCY_BENCHES: &[&str] = &[
    "img-dnn", "moses", "masstree", "silo", "shore", "specjbb", "sphinx", "xapian",
];

/// Whether a benchmark reports tail latency (vs throughput).
pub fn is_latency_bench(name: &str) -> bool {
    LATENCY_BENCHES.contains(&name)
}

/// Mean service work (capacity-ns) of a Tailbench app.
fn tailbench_service(name: &str) -> f64 {
    match name {
        "img-dnn" => work_ms(2.0),
        "moses" => work_ms(1.8),
        "masstree" => work_ms(0.36), // Table 3
        "silo" => work_ms(0.25),
        "shore" => work_ms(1.2),
        "specjbb" => work_ms(0.5),
        "sphinx" => work_ms(6.0),
        "xapian" => work_ms(0.9),
        _ => unreachable!("not a tailbench app: {name}"),
    }
}

/// Builds a latency benchmark with explicit arrival control.
pub fn build_latency(
    name: &str,
    workers: usize,
    interarrival_ns: f64,
    best_effort: bool,
    rng: SimRng,
) -> (Box<dyn Workload>, Handle) {
    let mut cfg = LatencyServerCfg::new(workers, tailbench_service(name), interarrival_ns);
    if best_effort {
        cfg = cfg.with_best_effort();
    }
    let (wl, stats) = LatencyServer::new(cfg, rng);
    (Box::new(wl), Handle::Latency(stats))
}

/// Builds any suite benchmark with `threads` threads at a default offered
/// load (latency benchmarks at 35% of nominal capacity). Returns the
/// workload and its statistics handle.
pub fn build(name: &str, threads: usize, rng: SimRng) -> (Box<dyn Workload>, Handle) {
    build_loaded(name, threads, 0.35, rng)
}

/// Like [`build`], with an explicit offered-load factor for latency
/// benchmarks (fraction of `threads` full reference cores). Constrained
/// VM profiles need lower factors to stay out of saturation.
pub fn build_loaded(
    name: &str,
    threads: usize,
    load: f64,
    rng: SimRng,
) -> (Box<dyn Workload>, Handle) {
    if is_latency_bench(name) {
        let service = tailbench_service(name);
        let interarrival = service / 1024.0 / threads as f64 / load;
        return build_latency(name, threads, interarrival, false, rng);
    }
    let t = threads;
    let huge = u64::MAX / 4; // effectively endless item pools
    let (wl, stats): (Box<dyn Workload>, Rc<RefCell<ThroughputStats>>) = match name {
        // PARSEC
        "blackscholes" => boxed(BarrierParallel::new(BarrierCfg::new(t, work_ms(25.0)), rng)),
        "bodytrack" => boxed(BarrierParallel::new(BarrierCfg::new(t, work_ms(3.0)), rng)),
        "canneal" => boxed(LockParallel::new(
            LockCfg::new(t, work_ms(0.5), work_ms(0.04)).with_comm_group(1),
            rng,
        )),
        "dedup" => boxed(Pipeline::new(
            PipelineCfg::new(
                vec![
                    (t.div_ceil(3), work_ms(0.8)),
                    (t.div_ceil(3), work_ms(1.2)),
                    (t.div_ceil(3), work_ms(0.6)),
                ],
                huge,
            )
            .with_comm_group(2),
            rng,
        )),
        "facesim" => boxed(BarrierParallel::new(BarrierCfg::new(t, work_ms(6.0)), rng)),
        "fluidanimate" => boxed(BarrierParallel::new(BarrierCfg::new(t, work_ms(1.2)), rng)),
        "freqmine" => boxed(mk_queue(t, huge, work_ms(8.0), rng)),
        "streamcluster" => boxed(BarrierParallel::new(
            BarrierCfg::new(t, work_ms(0.6)).spinning(),
            rng,
        )),
        "swaptions" => boxed(mk_queue(t, huge, work_ms(20.0), rng)),
        "x264" => boxed(Pipeline::new(
            PipelineCfg::new(
                vec![(t.div_ceil(2), work_ms(1.5)), (t.div_ceil(2), work_ms(1.0))],
                huge,
            )
            .with_comm_group(3),
            rng,
        )),
        // SPLASH-2x
        "barnes" => boxed(BarrierParallel::new(BarrierCfg::new(t, work_ms(4.0)), rng)),
        "fft" => boxed(BarrierParallel::new(
            BarrierCfg::new(t, work_ms(2.0)).with_comm_group(4),
            rng,
        )),
        "lu_cb" => boxed(BarrierParallel::new(BarrierCfg::new(t, work_ms(1.8)), rng)),
        "lu_ncb" => boxed(BarrierParallel::new(
            BarrierCfg::new(t, work_ms(1.5)).with_comm_group(5),
            rng,
        )),
        "ocean_cp" => boxed(BarrierParallel::new(
            BarrierCfg::new(t, work_ms(1.2)).with_comm_group(6),
            rng,
        )),
        "ocean_ncp" => boxed(BarrierParallel::new(
            BarrierCfg::new(t, work_ms(1.0)).with_comm_group(7),
            rng,
        )),
        "radiosity" => boxed(LockParallel::new(
            LockCfg::new(t, work_ms(0.4), work_ms(0.08)),
            rng,
        )),
        "radix" => boxed(BarrierParallel::new(
            BarrierCfg::new(t, work_ms(1.0)).with_comm_group(8),
            rng,
        )),
        "raytrace" => boxed(mk_queue(t, huge, work_ms(10.0), rng)),
        "volrend" => boxed(BarrierParallel::new(
            BarrierCfg::new(t, work_ms(0.8)).spinning(),
            rng,
        )),
        "water_spatial" => boxed(BarrierParallel::new(BarrierCfg::new(t, work_ms(2.5)), rng)),
        // Others
        "pbzip2" => boxed(mk_queue(t, huge, work_ms(6.0), rng)),
        "hackbench" => boxed(MsgPairs::new(
            MsgPairsCfg::new((t / 4).max(1), 2, 2, 2000),
            rng,
        )),
        "fio" => boxed(ThinkIo::new(t, work_ms(0.2), 2_000_000, rng)),
        "sysbench" => {
            let (w, s) = Stressor::new(t, work_ms(10.0));
            (Box::new(w.with_pause(100_000)) as Box<dyn Workload>, s)
        }
        "matmul" => {
            let (w, s) = Stressor::new(t, work_ms(15.0));
            (
                Box::new(w.cache_sensitive().with_pause(100_000)) as Box<dyn Workload>,
                s,
            )
        }
        "nginx" => {
            // Nginx reports throughput; built as a server with a live
            // series for the adaptability experiments.
            let service = work_ms(0.5);
            let interarrival = service / 1024.0 / t as f64 / 0.5;
            let cfg =
                LatencyServerCfg::new(t, service, interarrival).with_series(simcore::time::SEC);
            let (wl, stats) = LatencyServer::new(cfg, rng);
            return (Box::new(wl), Handle::Latency(stats));
        }
        other => panic!("unknown benchmark: {other}"),
    };
    (wl, Handle::Throughput(stats))
}

fn boxed<W: Workload + 'static>(
    pair: (W, Rc<RefCell<ThroughputStats>>),
) -> (Box<dyn Workload>, Rc<RefCell<ThroughputStats>>) {
    (Box::new(pair.0), pair.1)
}

fn mk_queue(
    threads: usize,
    items: u64,
    work: f64,
    rng: SimRng,
) -> (TaskQueue, Rc<RefCell<ThroughputStats>>) {
    TaskQueue::new(threads, items, work, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_benchmark_builds() {
        let names: Vec<&str> = THROUGHPUT_BENCHES
            .iter()
            .chain(LATENCY_BENCHES.iter())
            .copied()
            .chain(["hackbench", "fio", "sysbench", "matmul"])
            .collect();
        for name in names {
            let (_wl, _h) = build(name, 4, SimRng::new(1));
        }
    }

    #[test]
    fn masstree_matches_table3_service_time() {
        assert_eq!(tailbench_service("masstree"), work_ms(0.36));
    }

    #[test]
    fn latency_classification() {
        assert!(is_latency_bench("img-dnn"));
        assert!(is_latency_bench("xapian"));
        assert!(!is_latency_bench("canneal"));
        assert!(!is_latency_bench("nginx"));
    }

    #[test]
    #[should_panic]
    fn unknown_benchmark_panics() {
        build("not-a-bench", 4, SimRng::new(1));
    }

    #[test]
    fn suite_has_34_named_workloads() {
        // 23 throughput + 8 tailbench + hackbench + fio + sysbench = 34.
        assert_eq!(THROUGHPUT_BENCHES.len() + LATENCY_BENCHES.len() + 3, 34);
    }
}
