//! Shared pieces: work-unit helpers and result collectors.
//!
//! Workload objects are owned by the simulated VM, so experiments hold a
//! shared handle (`Rc<RefCell<…>>`, the simulator is single-threaded by
//! design) to the statistics and read them after the run.

use metrics::{Histogram, TimeSeries};
use simcore::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Capacity-ns of work corresponding to `ms` milliseconds on a full
/// reference core.
pub fn work_ms(ms: f64) -> f64 {
    1024.0 * ms * 1.0e6
}

/// Capacity-ns of work corresponding to `us` microseconds on a full
/// reference core.
pub fn work_us(us: f64) -> f64 {
    1024.0 * us * 1.0e3
}

/// Latency statistics of a request-serving workload.
#[derive(Default)]
pub struct LatencyStats {
    /// End-to-end (arrival → completion) latency, ns.
    pub e2e: Histogram,
    /// Queue time (arrival → service start, including runqueue latency), ns.
    pub queue: Histogram,
    /// Service time (service start → completion), ns.
    pub service: Histogram,
    /// Completed requests.
    pub completed: u64,
    /// Dropped requests (backlog overflow), if a limit is set.
    pub dropped: u64,
    /// Completions per window (live throughput).
    pub series: Option<TimeSeries>,
}

impl LatencyStats {
    /// Shared handle constructor.
    pub fn handle() -> Rc<RefCell<LatencyStats>> {
        Rc::new(RefCell::new(LatencyStats::default()))
    }

    /// Mean completion rate (requests/s) over the run.
    pub fn throughput(&self, duration: SimTime) -> f64 {
        self.completed as f64 / duration.as_secs_f64().max(1e-9)
    }
}

/// Progress statistics of a throughput-oriented workload.
#[derive(Default)]
pub struct ThroughputStats {
    /// Completed work items / rounds / messages (archetype-specific unit).
    pub completed: u64,
    /// When the (finite) workload finished, if it did.
    pub finished_at: Option<SimTime>,
    /// Total work executed, capacity-ns.
    pub work_done: f64,
}

impl ThroughputStats {
    /// Shared handle constructor.
    pub fn handle() -> Rc<RefCell<ThroughputStats>> {
        Rc::new(RefCell::new(ThroughputStats::default()))
    }

    /// Items per second over `duration` (or until `finished_at`).
    pub fn rate(&self, duration: SimTime) -> f64 {
        let d = self
            .finished_at
            .map(|t| t.as_secs_f64())
            .unwrap_or_else(|| duration.as_secs_f64());
        self.completed as f64 / d.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_units_scale() {
        assert_eq!(work_ms(1.0), 1024.0 * 1e6);
        assert_eq!(work_us(1000.0), work_ms(1.0));
    }

    #[test]
    fn throughput_uses_finish_time_when_finite() {
        let s = ThroughputStats {
            completed: 100,
            finished_at: Some(SimTime::from_secs(2)),
            ..Default::default()
        };
        assert_eq!(s.rate(SimTime::from_secs(10)), 50.0);
    }

    #[test]
    fn latency_throughput_over_duration() {
        let s = LatencyStats {
            completed: 500,
            ..Default::default()
        };
        assert_eq!(s.throughput(SimTime::from_secs(5)), 100.0);
    }
}
