//! Bounded ring buffer for trace events.
//!
//! Overwrites the oldest events once full — the tail of a run is what you
//! want when diagnosing why it ended the way it did — and counts what it
//! dropped so exporters can say the record is partial.

use crate::event::TraceEvent;

/// A fixed-capacity event log.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    buf: Vec<TraceEvent>,
    /// Index of the oldest retained event once the buffer has wrapped.
    start: usize,
    /// Events overwritten because the buffer was full.
    dropped: u64,
    cap: usize,
}

impl RingBuffer {
    /// Creates a buffer retaining at most `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
            dropped: 0,
            cap: cap.max(1),
        }
    }

    /// Appends an event, overwriting the oldest if full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Iterates retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = self.buf.split_at(self.start);
        head.iter().chain(tail.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use simcore::SimTime;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime(n),
            vm: 0,
            kind: EventKind::VcpuWake { vcpu: 0 },
        }
    }

    #[test]
    fn retains_in_order_before_wrap() {
        let mut r = RingBuffer::new(4);
        for i in 0..3 {
            r.push(ev(i));
        }
        let times: Vec<u64> = r.iter().map(|e| e.at.0).collect();
        assert_eq!(times, vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn wraps_dropping_oldest_and_counts() {
        let mut r = RingBuffer::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        let times: Vec<u64> = r.iter().map(|e| e.at.0).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 4);
    }
}
