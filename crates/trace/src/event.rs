//! Typed, `SimTime`-stamped scheduler events.
//!
//! Every event is a small `Copy` value: constructing one at an emit site
//! never allocates, so the disabled path ([`crate::TraceSink::Off`]) costs a
//! branch and nothing else. Identifiers are raw integers (`u32` task ids,
//! `u16` vCPU indices) rather than the guest kernel's newtypes — the trace
//! crate sits *below* `guestos` in the dependency graph so both the guest
//! and the host simulator can emit into it.

use simcore::SimTime;

/// Why a task migrated between vCPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateKind {
    /// Wakeup placement chose a different vCPU than the task last ran on.
    Wake,
    /// Periodic or newidle load balancing pulled the task.
    Balance,
    /// Active balance pushed the currently running task away.
    Active,
    /// vSched's idle-vCPU harvesting (ivh) pulled the task.
    Ivh,
}

/// Lifecycle of one ivh pull request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IvhPhase {
    /// A pull was initiated for a running task on a slower vCPU.
    Attempt,
    /// The task landed on the harvesting vCPU.
    Complete,
    /// The pull arrived too late (source idle, task moved, or stale).
    Abandon,
}

/// Why the host descheduled a vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptReason {
    /// Another entity's turn on the hardware thread.
    Preempt,
    /// CFS bandwidth throttling (quota exhausted).
    Throttle,
    /// The guest halted the vCPU (went idle).
    Halt,
}

/// Why the guest kernel switched a task out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchReason {
    /// Switch-in: the task was picked to run.
    Pick,
    /// Preempted by tick or wakeup.
    Preempt,
    /// Voluntary sleep.
    Sleep,
    /// Blocked on I/O or a lock.
    Block,
    /// Task exited.
    Exit,
    /// Descheduled so it can migrate.
    Migrate,
}

/// Which vProber produced a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// vcap: per-vCPU capacity estimate (1024 scale).
    Vcap,
    /// vcap heavy phase: hosting core capacity.
    VcapCore,
    /// vact: vCPU activity / latency estimate.
    Vact,
    /// vtop: probed inter-vCPU latency.
    Vtop,
    /// vcache: timed pointer-chase LLC thrash estimate.
    Vcache,
}

/// Tenant priority class of a fleet VM.
///
/// Real fleets (the SAP Cloud Infrastructure Dataset) segment tenants into
/// priority tiers with very different lifetime and SLO profiles; the fleet
/// layer stamps each admission with its tier so per-tier tail latency is
/// visible in the trace and the SLO accounting. Lives here (like
/// [`FaultClass`]) because `trace` sits below `fleet` in the dependency
/// graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PriorityClass {
    /// Latency-critical production tenants (tightest SLO).
    Critical,
    /// Default production tier.
    Standard,
    /// Preemptible batch / best-effort tenants.
    Batch,
}

/// Every priority tier, in severity order (index = stable tier id).
pub const PRIORITY_CLASSES: [PriorityClass; 3] = [
    PriorityClass::Critical,
    PriorityClass::Standard,
    PriorityClass::Batch,
];

impl PriorityClass {
    /// Stable serialization name (fleet trace files store these).
    pub fn name(&self) -> &'static str {
        match self {
            PriorityClass::Critical => "critical",
            PriorityClass::Standard => "standard",
            PriorityClass::Batch => "batch",
        }
    }

    /// Inverse of [`PriorityClass::name`].
    pub fn from_name(name: &str) -> Option<PriorityClass> {
        Some(match name {
            "critical" => PriorityClass::Critical,
            "standard" => PriorityClass::Standard,
            "batch" => PriorityClass::Batch,
            _ => return None,
        })
    }

    /// Stable tier index into [`PRIORITY_CLASSES`]-shaped arrays.
    pub fn index(&self) -> usize {
        *self as usize
    }
}

/// Class of an injected host-side fault (chaos mode).
///
/// Lives here rather than in `hostsim` because `trace` sits below both the
/// host simulator (which injects faults) and `vsched` (which must survive
/// them) in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A host stressor thread burst onto a pcore.
    StressorBurst,
    /// The cgroup quota/period of a vCPU changed.
    QuotaChurn,
    /// A vCPU was re-pinned to different hardware threads.
    PinChange,
    /// A vCPU was taken offline (host refuses to schedule it).
    VcpuOffline,
    /// A previously offline vCPU came back online.
    VcpuOnline,
    /// A pcore's capacity (DVFS frequency) stepped.
    CapacityStep,
    /// Probe-visible measurements gained multiplicative noise.
    ProbeNoise,
}

impl FaultClass {
    /// Stable serialization name (chaos repro files store these).
    pub fn name(&self) -> &'static str {
        match self {
            FaultClass::StressorBurst => "StressorBurst",
            FaultClass::QuotaChurn => "QuotaChurn",
            FaultClass::PinChange => "PinChange",
            FaultClass::VcpuOffline => "VcpuOffline",
            FaultClass::VcpuOnline => "VcpuOnline",
            FaultClass::CapacityStep => "CapacityStep",
            FaultClass::ProbeNoise => "ProbeNoise",
        }
    }

    /// Inverse of [`FaultClass::name`].
    pub fn from_name(name: &str) -> Option<FaultClass> {
        Some(match name {
            "StressorBurst" => FaultClass::StressorBurst,
            "QuotaChurn" => FaultClass::QuotaChurn,
            "PinChange" => FaultClass::PinChange,
            "VcpuOffline" => FaultClass::VcpuOffline,
            "VcpuOnline" => FaultClass::VcpuOnline,
            "CapacityStep" => FaultClass::CapacityStep,
            "ProbeNoise" => FaultClass::ProbeNoise,
            _ => return None,
        })
    }
}

/// Why a fleet host stopped accepting and running VMs (fleet chaos mode).
///
/// Lives here (like [`FaultClass`]) because `trace` sits below `fleet`:
/// the fleet chaos plan stamps every host failure with its kind so the
/// checker and the replayed-day comparisons can distinguish an abrupt
/// crash (guest probe state is lost) from an orderly maintenance drain
/// (probe state can be handed off to the destination host).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostFailKind {
    /// Abrupt host loss: resident VMs are evacuated cold.
    Crash,
    /// Orderly maintenance drain: residents migrate with state handoff.
    Drain,
}

impl HostFailKind {
    /// Stable serialization name (fleet chaos plans store these).
    pub fn name(&self) -> &'static str {
        match self {
            HostFailKind::Crash => "Crash",
            HostFailKind::Drain => "Drain",
        }
    }

    /// Inverse of [`HostFailKind::name`].
    pub fn from_name(name: &str) -> Option<HostFailKind> {
        Some(match name {
            "Crash" => HostFailKind::Crash,
            "Drain" => HostFailKind::Drain,
            _ => return None,
        })
    }
}

/// Why vSched's resilience layer entered degraded mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// A prober's confidence score fell below the enter threshold.
    LowConfidence(ProbeKind),
    /// A prober returned a recoverable error (fallback path fired).
    ProbeError(ProbeKind),
}

/// One scheduler event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A sleeping/blocked task became runnable on `vcpu`.
    TaskWake {
        task: u32,
        vcpu: u16,
        waker: Option<u32>,
    },
    /// A task moved from `from` to `to`.
    TaskMigrate {
        task: u32,
        from: u16,
        to: u16,
        kind: MigrateKind,
    },
    /// The guest switched a task in (`next`) or out (`prev`) on `vcpu`.
    /// `min_vruntime` snapshots the runqueue floor at the switch.
    ContextSwitch {
        vcpu: u16,
        prev: Option<u32>,
        next: Option<u32>,
        reason: SwitchReason,
        min_vruntime: u64,
    },
    /// The host put `vcpu` on hardware thread `thread`.
    VcpuResume { vcpu: u16, thread: u16 },
    /// The host descheduled a running `vcpu`.
    VcpuPreempt { vcpu: u16, reason: PreemptReason },
    /// A halted `vcpu` was kicked runnable (host-side wake).
    VcpuWake { vcpu: u16 },
    /// A waiting (never resumed) `vcpu` halted.
    VcpuHalt { vcpu: u16 },
    /// `delta_ns` of steal time accrued to a waiting `vcpu`.
    StealAccrue { vcpu: u16, delta_ns: u64 },
    /// A rescheduling IPI was sent to `to`.
    ReschedIpi { from: Option<u16>, to: u16 },
    /// A vProber published a sample for `vcpu`.
    ProbeSample {
        vcpu: u16,
        probe: ProbeKind,
        value: f64,
    },
    /// bvs wake selection ran for `task` and chose `chosen` (or deferred to
    /// CFS with `None`).
    BvsSelect { task: u32, chosen: Option<u16> },
    /// One phase of an ivh pull of `task` from `src` toward `target`.
    IvhPull {
        task: u32,
        src: u16,
        target: u16,
        phase: IvhPhase,
    },
    /// The guest charged `task` for a run delta on `vcpu`.
    TaskCharge {
        task: u32,
        vcpu: u16,
        active_ns: u64,
        work: f64,
    },
    /// The chaos layer injected a fault. `vcpu` is the affected guest vCPU
    /// where one exists (pin/offline/quota), or 0 for machine-wide faults.
    FaultInjected { vcpu: u16, class: FaultClass },
    /// The host (re)installed a bandwidth limit on `vcpu`.
    BandwidthSet {
        vcpu: u16,
        quota_ns: u64,
        period_ns: u64,
    },
    /// The resilience layer re-probed after low confidence (bounded,
    /// exponential backoff; `attempt` counts from 1).
    ProbeRetry { probe: ProbeKind, attempt: u32 },
    /// vSched entered degraded mode (bvs off, ivh watchdog armed, rwc
    /// relaxation capped).
    DegradedEnter { reason: DegradeReason },
    /// vSched left degraded mode after `after_ns` of degraded operation.
    DegradedExit { after_ns: u64 },
    /// The resilience watchdog abandoned an in-flight ivh pull whose target
    /// vCPU never started within the timeout.
    IvhAbandonedByWatchdog {
        task: u32,
        src: u16,
        target: u16,
        waited_ns: u64,
    },
    /// PELT decayed `task`'s load across an idle gap of `idle_ns` at wakeup.
    /// Loads are in `UTIL_MAX`-scale units; the checker asserts
    /// `load_after <= load_before` (sleep decay is monotone).
    PeltDecay {
        task: u32,
        load_before: f64,
        load_after: f64,
        idle_ns: u64,
    },
    /// The fleet layer admitted a VM into the placement pipeline. `uid` is
    /// the fleet-wide VM id (distinct from per-machine VM indices),
    /// `vcpus` its nominal size, and `prio` its tenant priority tier.
    /// Fleet events are emitted into a fleet-scoped collector, separate
    /// from the per-machine ones.
    VmAdmitted {
        uid: u32,
        vcpus: u16,
        prio: PriorityClass,
    },
    /// A placement policy put VM `uid` on `host`. `occupied` is the host's
    /// committed vCPU count *after* this placement and `cap` its
    /// overcommit cap, so the checker can assert `occupied <= cap` and
    /// that every admitted VM is placed at most once.
    VmPlaced {
        uid: u32,
        host: u16,
        vcpus: u16,
        occupied: u64,
        cap: u64,
    },
    /// VM `uid` departed `host`, releasing its `vcpus` committed vCPUs.
    VmDeparted { uid: u32, host: u16, vcpus: u16 },
    /// A fleet host failed (crash) or began draining for maintenance.
    /// `residents` is the number of VMs resident at the instant of
    /// failure — the checker holds the fleet to evacuating (or
    /// departing) every one of them before the run ends.
    HostFailed {
        host: u16,
        kind: HostFailKind,
        residents: u16,
    },
    /// A failed host came back after `down_ns` and may accept placements
    /// again.
    HostRecovered { host: u16, down_ns: u64 },
    /// VM `uid` was live-migrated off a failing/draining host.
    /// `from_occupied`/`to_occupied` are the committed vCPU counts of the
    /// source and destination *after* the move, and `cap` the
    /// destination's overcommit cap, so the checker can verify occupancy
    /// is conserved (source lost exactly `vcpus`, destination gained
    /// exactly `vcpus`) and the destination stays within its cap.
    VmMigrated {
        uid: u32,
        from: u16,
        to: u16,
        vcpus: u16,
        from_occupied: u64,
        to_occupied: u64,
        cap: u64,
    },
    /// The domain scheduler bound the emitting VM (`TraceEvent::vm`) to a
    /// tenant class; emitted once per VM when a domain schedule starts so
    /// the checker can tie later `VcpuResume`s to a class.
    DomainAssigned { class: PriorityClass },
    /// The domain scheduler rotated to slice `index` of its period: only
    /// vCPUs of `class` may execute until the next switch. Host-global
    /// (`TraceEvent::vm` is 0).
    DomainSwitch {
        index: u16,
        class: PriorityClass,
        slice_ns: u64,
        period_ns: u64,
    },
    /// Per-domain accounting for the slice that just ended: `entitled_ns`
    /// is `slice_ns * threads`, `used_ns` the execution time of the active
    /// class during the slice, and `stolen_ns` execution time taken by any
    /// *other* class — zero when the domain gate holds. The checker asserts
    /// conservation: `used_ns + stolen_ns <= entitled_ns` and
    /// `entitled_ns == slice_ns * threads`.
    StealAccounted {
        index: u16,
        class: PriorityClass,
        threads: u16,
        slice_ns: u64,
        entitled_ns: u64,
        used_ns: u64,
        stolen_ns: u64,
    },
    /// Probe hardening rejected a sample for `vcpu` instead of feeding it
    /// into the capacity EMA (`median` is the recent-sample median the
    /// outlier test compared against, or the last accepted estimate).
    ProbeRejected {
        vcpu: u16,
        probe: ProbeKind,
        sample: f64,
        median: f64,
    },
    /// The vcache prober timed one pointer-chase micro-probe on `vcpu` and
    /// accepted it into LLC-domain `domain`'s estimate. `pressure` is the
    /// normalized miss ratio in `[0, 1]` derived from `latency_ns`.
    CacheProbe {
        vcpu: u16,
        domain: u16,
        latency_ns: f64,
        pressure: f64,
    },
    /// Periodic per-socket LLC occupancy snapshot from the host model.
    /// `occupied_bytes` is the live total across resident VMs and
    /// `llc_bytes` the socket's capacity, so the checker can assert
    /// occupancy never exceeds the cache. The cumulative counters
    /// (`inserted_bytes` filled by active VMs, `evicted_bytes` removed by
    /// neighbour pressure, `decayed_bytes` lost to descheduled decay) are
    /// monotone and satisfy conservation:
    /// `occupied == inserted - evicted - decayed` within float slack.
    LlcOccupancySample {
        socket: u16,
        occupied_bytes: f64,
        llc_bytes: f64,
        inserted_bytes: f64,
        evicted_bytes: f64,
        decayed_bytes: f64,
    },
    /// Cache-aware bvs placed `task` on `chosen`, whose LLC domain
    /// `domain` had estimated `pressure`; `best_pressure` is the lowest
    /// published estimate over all candidate domains at decision time.
    /// The checker asserts the pick is justified: `pressure` within the
    /// preference margin of `best_pressure`.
    CacheAwarePick {
        task: u32,
        chosen: u16,
        domain: u16,
        pressure: f64,
        best_pressure: f64,
    },
}

/// A stamped event: simulated time, owning VM, payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated timestamp.
    pub at: SimTime,
    /// VM index (host scope); 0 for single-VM runs.
    pub vm: u16,
    /// The event payload.
    pub kind: EventKind,
}

impl EventKind {
    /// Short stable name used by exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TaskWake { .. } => "task_wake",
            EventKind::TaskMigrate { .. } => "task_migrate",
            EventKind::ContextSwitch { .. } => "context_switch",
            EventKind::VcpuResume { .. } => "vcpu_resume",
            EventKind::VcpuPreempt { .. } => "vcpu_preempt",
            EventKind::VcpuWake { .. } => "vcpu_wake",
            EventKind::VcpuHalt { .. } => "vcpu_halt",
            EventKind::StealAccrue { .. } => "steal_accrue",
            EventKind::ReschedIpi { .. } => "resched_ipi",
            EventKind::ProbeSample { .. } => "probe_sample",
            EventKind::BvsSelect { .. } => "bvs_select",
            EventKind::IvhPull { .. } => "ivh_pull",
            EventKind::TaskCharge { .. } => "task_charge",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::BandwidthSet { .. } => "bandwidth_set",
            EventKind::ProbeRetry { .. } => "probe_retry",
            EventKind::DegradedEnter { .. } => "degraded_enter",
            EventKind::DegradedExit { .. } => "degraded_exit",
            EventKind::IvhAbandonedByWatchdog { .. } => "ivh_abandoned_by_watchdog",
            EventKind::PeltDecay { .. } => "pelt_decay",
            EventKind::VmAdmitted { .. } => "vm_admitted",
            EventKind::VmPlaced { .. } => "vm_placed",
            EventKind::VmDeparted { .. } => "vm_departed",
            EventKind::HostFailed { .. } => "host_failed",
            EventKind::HostRecovered { .. } => "host_recovered",
            EventKind::VmMigrated { .. } => "vm_migrated",
            EventKind::DomainAssigned { .. } => "domain_assigned",
            EventKind::DomainSwitch { .. } => "domain_switch",
            EventKind::StealAccounted { .. } => "steal_accounted",
            EventKind::ProbeRejected { .. } => "probe_rejected",
            EventKind::CacheProbe { .. } => "cache_probe",
            EventKind::LlcOccupancySample { .. } => "llc_occupancy_sample",
            EventKind::CacheAwarePick { .. } => "cache_aware_pick",
        }
    }
}
