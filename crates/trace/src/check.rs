//! Streaming conservation-law checker.
//!
//! Consumes the event stream online (no buffering of the full run) and
//! validates the simulator's structural invariants:
//!
//! * a task runs on at most one vCPU at any instant, and switch-in/out
//!   events pair up per vCPU;
//! * per-vCPU host accounting conserves wall time: every waiting window
//!   (preempt/throttle/kick → resume or halt) is fully covered by
//!   `StealAccrue` deltas, so `run + steal + idle == wall`;
//! * accrued work never exceeds `capacity × active-time`;
//! * per-runqueue `min_vruntime` never moves backwards across switches;
//! * every ivh pull attempt resolves to exactly one of completed/abandoned.
//!
//! The first violation is retained with the events leading up to it, so a
//! failing figure run points straight at the broken transition.

use crate::event::{EventKind, IvhPhase, PreemptReason, PriorityClass, TraceEvent};
use simcore::SimTime;
use std::collections::HashMap;
use std::fmt;

/// How many events of context precede a reported violation.
const CONTEXT: usize = 8;

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// A task was switched in while already running on another vCPU.
    DoubleRun,
    /// Switch-in on a vCPU whose previous task never switched out.
    SwitchInWhileBusy,
    /// Switch-out of a task that was not the vCPU's current.
    MismatchedSwitchOut,
    /// A runqueue's `min_vruntime` moved backwards.
    VruntimeInversion,
    /// A waiting window's steal deltas do not sum to its wall time.
    StealAccountingGap,
    /// Steal accrued to a vCPU that was not waiting.
    StealWhileNotWaiting,
    /// A vCPU resumed while already running (host double-schedule).
    RunOverlap,
    /// A run delta accrued more work than capacity × active-time allows.
    WorkExceedsCapacity,
    /// An ivh pull completed/abandoned with no outstanding attempt, or
    /// resolved twice.
    IvhUnmatchedResolution,
    /// A second ivh pull attempt targeted a vCPU with one still pending.
    IvhDuplicateAttempt,
    /// A task migrated while recorded as running.
    MigrateWhileRunning,
    /// A bandwidth limit was installed with `quota > period`.
    QuotaExceedsPeriod,
    /// A vCPU throttled again without an intervening unthrottle (resume,
    /// halt, or wake) — quota refill never released it.
    ThrottleWithoutRefill,
    /// PELT load grew across an idle gap (sleep decay must be monotone).
    PeltLoadIncrease,
    /// DegradedEnter while already degraded, DegradedExit while not, or an
    /// exit whose `after_ns` disagrees with the observed enter time.
    DegradedStateMismatch,
    /// A placement left a host with more committed vCPUs than its
    /// overcommit cap allows (`occupied > cap` on a `VmPlaced`).
    OvercommitCapExceeded,
    /// A VM was placed without a preceding admission.
    PlacementWithoutAdmission,
    /// A VM was placed a second time while already placed.
    DuplicatePlacement,
    /// A VM departed without ever being placed, or from the wrong host.
    DepartWithoutPlacement,
    /// A VM was placed or migrated onto a host that had failed and not
    /// yet recovered.
    PlacementOntoFailedHost,
    /// A VM was migrated while not placed, or away from a host other
    /// than the one it was placed on.
    MigrationWithoutPlacement,
    /// A migration's claimed source/destination occupancy disagrees with
    /// the occupancy reconstructed from prior placements: the source
    /// must lose exactly `vcpus` and the destination gain exactly
    /// `vcpus`.
    MigrationOccupancyMismatch,
    /// HostFailed while already failed, HostRecovered while not failed,
    /// or a recovery whose `down_ns` disagrees with the observed failure
    /// time.
    HostFailureStateMismatch,
    /// A `DomainSwitch` announced a zero-length slice, a slice longer than
    /// the period, or closed a rotation cycle whose slices do not sum to
    /// the period.
    DomainSliceSumMismatch,
    /// A vCPU of one tenant class resumed while the domain scheduler had a
    /// different class's slice active.
    CrossDomainExecution,
    /// A `StealAccounted` record does not conserve time: `entitled_ns`
    /// disagrees with `slice_ns * threads`, or `used + stolen` exceeds the
    /// entitlement.
    StealConservationMismatch,
    /// An `LlcOccupancySample` reported more occupied bytes than the
    /// socket's LLC holds.
    LlcOccupancyOverflow,
    /// An `LlcOccupancySample` breaks conservation: its cumulative
    /// inserted/evicted/decayed counters moved backwards, or
    /// `occupied != inserted - evicted - decayed` beyond float slack.
    LlcConservationMismatch,
    /// A `CacheAwarePick` chose a vCPU whose LLC-domain pressure exceeds
    /// the best published estimate by more than the preference margin —
    /// the pick is not justified by the estimates it claims to act on.
    CacheAwarePickUnjustified,
}

/// How far above the best published LLC-domain pressure a cache-aware
/// pick may land and still count as justified. Must match the bvs
/// preference margin (`Tunables::vcache_pick_margin`).
pub const CACHE_PICK_MARGIN: f64 = 0.15;

impl ViolationKind {
    /// Stable machine-readable law identifier. The chaos-seed shrinker
    /// compares these to decide whether a reduced fault plan still fails
    /// the *same* law, so the names are part of the repro-file format —
    /// treat them as append-only.
    pub fn law_name(&self) -> &'static str {
        match self {
            ViolationKind::DoubleRun => "double-run",
            ViolationKind::SwitchInWhileBusy => "switch-in-while-busy",
            ViolationKind::MismatchedSwitchOut => "mismatched-switch-out",
            ViolationKind::VruntimeInversion => "vruntime-inversion",
            ViolationKind::StealAccountingGap => "steal-accounting-gap",
            ViolationKind::StealWhileNotWaiting => "steal-while-not-waiting",
            ViolationKind::RunOverlap => "run-overlap",
            ViolationKind::WorkExceedsCapacity => "work-exceeds-capacity",
            ViolationKind::IvhUnmatchedResolution => "ivh-unmatched-resolution",
            ViolationKind::IvhDuplicateAttempt => "ivh-duplicate-attempt",
            ViolationKind::MigrateWhileRunning => "migrate-while-running",
            ViolationKind::QuotaExceedsPeriod => "quota-exceeds-period",
            ViolationKind::ThrottleWithoutRefill => "throttle-without-refill",
            ViolationKind::PeltLoadIncrease => "pelt-load-increase",
            ViolationKind::DegradedStateMismatch => "degraded-state-mismatch",
            ViolationKind::OvercommitCapExceeded => "overcommit-cap-exceeded",
            ViolationKind::PlacementWithoutAdmission => "placement-without-admission",
            ViolationKind::DuplicatePlacement => "duplicate-placement",
            ViolationKind::DepartWithoutPlacement => "depart-without-placement",
            ViolationKind::PlacementOntoFailedHost => "placement-onto-failed-host",
            ViolationKind::MigrationWithoutPlacement => "migration-without-placement",
            ViolationKind::MigrationOccupancyMismatch => "migration-occupancy-mismatch",
            ViolationKind::HostFailureStateMismatch => "host-failure-state-mismatch",
            ViolationKind::DomainSliceSumMismatch => "domain-slice-sum-mismatch",
            ViolationKind::CrossDomainExecution => "cross-domain-execution",
            ViolationKind::StealConservationMismatch => "steal-conservation-mismatch",
            ViolationKind::LlcOccupancyOverflow => "llc-occupancy-overflow",
            ViolationKind::LlcConservationMismatch => "llc-conservation-mismatch",
            ViolationKind::CacheAwarePickUnjustified => "cache-aware-pick-unjustified",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One detected violation, with the triggering event and recent context.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Classification.
    pub kind: ViolationKind,
    /// The event that exposed the inconsistency.
    pub event: TraceEvent,
    /// Human-readable specifics (expected vs observed).
    pub detail: String,
    /// Up to [`CONTEXT`] events preceding `event`, oldest first.
    pub context: Vec<TraceEvent>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} at {} (vm {}): {}",
            self.kind, self.event.at, self.event.vm, self.detail
        )?;
        writeln!(f, "  event: {:?}", self.event.kind)?;
        for ev in &self.context {
            writeln!(f, "  before: {} {:?}", ev.at, ev.kind)?;
        }
        Ok(())
    }
}

/// Summary of a completed check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Events observed.
    pub events: u64,
    /// Total violations detected.
    pub violations: u64,
    /// The first violation, with context.
    pub first: Option<Violation>,
    /// ivh pulls still in flight when the stream ended (not a violation).
    pub pending_ivh: usize,
    /// vCPUs still throttled when the stream ended (not a violation — the
    /// run may simply have ended mid-period).
    pub still_throttled: usize,
    /// VMs admitted but never placed by stream end (not a violation — an
    /// admission may be pending or have been rejected for lack of room).
    pub unplaced_admissions: usize,
    /// VMs still placed on a failed host at stream end. The fleet's
    /// evacuation liveness law is that every resident of a failed host
    /// is migrated or departed before the run ends, so cluster runs
    /// assert this is zero; it is informational (like
    /// `unplaced_admissions`) because a raw stream may legitimately end
    /// mid-evacuation.
    pub stranded_vms: usize,
}

impl CheckReport {
    /// Whether the stream satisfied every invariant.
    pub fn ok(&self) -> bool {
        self.violations == 0
    }

    /// The law the first violation broke, as data rather than a panic or
    /// a rendered string — what supervised runs record and the shrinker
    /// minimizes against.
    pub fn first_law(&self) -> Option<&'static str> {
        self.first.as_ref().map(|v| v.kind.law_name())
    }

    /// Folds many collectors' reports into one verdict: counters sum and
    /// the first violation *in fold order* wins. Callers that check
    /// several collectors (a fleet cluster folds `[fleet, host 0,
    /// host 1, …]`) must pass a deterministic order — host id, not
    /// completion order — so the merged report is identical no matter
    /// how many workers produced the underlying streams.
    pub fn fold(reports: impl IntoIterator<Item = CheckReport>) -> CheckReport {
        let mut out = CheckReport {
            events: 0,
            violations: 0,
            first: None,
            pending_ivh: 0,
            still_throttled: 0,
            unplaced_admissions: 0,
            stranded_vms: 0,
        };
        for r in reports {
            out.events += r.events;
            out.violations += r.violations;
            if out.first.is_none() {
                out.first = r.first;
            }
            out.pending_ivh += r.pending_ivh;
            out.still_throttled += r.still_throttled;
            out.unplaced_admissions += r.unplaced_admissions;
            out.stranded_vms += r.stranded_vms;
        }
        out
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.first {
            None => write!(
                f,
                "{} events checked, 0 violations ({} ivh pulls in flight)",
                self.events, self.pending_ivh
            ),
            Some(v) => write!(
                f,
                "{} events checked, {} violations; first:\n{v}",
                self.events, self.violations
            ),
        }
    }
}

/// Host-side occupancy state of one vCPU, as reconstructed from events.
#[derive(Debug, Clone, Copy)]
enum HostCpu {
    /// No event seen yet; first transition initializes without checking.
    Unknown,
    /// Halted (guest idle).
    Idle,
    /// Runnable or throttled since `since`, with `steal` ns accrued so far.
    Waiting { since: SimTime, steal: u64 },
    /// On a hardware thread.
    Running,
}

/// The streaming checker. Feed with [`InvariantChecker::observe`]; collect
/// with [`InvariantChecker::report`].
#[derive(Debug)]
pub struct InvariantChecker {
    /// Max work per nanosecond of active time (1024 = a full-speed core).
    cap_ceiling: f64,
    running: HashMap<(u16, u32), u16>,
    curr: HashMap<(u16, u16), u32>,
    min_vr: HashMap<(u16, u16), u64>,
    host: HashMap<(u16, u16), HostCpu>,
    ivh_pending: HashMap<(u16, u16), u32>,
    throttled: HashMap<(u16, u16), SimTime>,
    degraded: HashMap<u16, SimTime>,
    /// Fleet VMs admitted (by uid) and awaiting placement.
    admitted: HashMap<u32, SimTime>,
    /// Fleet VMs currently placed: uid → host.
    placed: HashMap<u32, u16>,
    /// Fleet hosts currently failed/draining: host → failure time.
    failed_hosts: HashMap<u16, SimTime>,
    /// Committed-vCPU occupancy per fleet host, reconstructed from the
    /// `occupied` snapshots that placements and migrations carry.
    host_occ: HashMap<u16, u64>,
    /// Tenant class each VM was bound to by `DomainAssigned`.
    vm_class: HashMap<u16, PriorityClass>,
    /// Last cumulative (inserted, evicted, decayed) LLC counters per
    /// `(vm, socket)`, for the monotonicity half of conservation.
    llc_cumulative: HashMap<(u16, u16), (f64, f64, f64)>,
    /// The domain slice currently active: `(index, class)`.
    active_domain: Option<(u16, PriorityClass)>,
    /// Slice lengths accumulated since the current rotation cycle began
    /// (reset when a `DomainSwitch` wraps back to index 0).
    domain_cycle_ns: u64,
    recent: std::collections::VecDeque<TraceEvent>,
    events: u64,
    violations: u64,
    first: Option<Violation>,
}

impl Default for InvariantChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl InvariantChecker {
    /// A checker with the default capacity ceiling (full-speed core, 1024
    /// work units per ns).
    pub fn new() -> Self {
        Self {
            cap_ceiling: 1024.0,
            running: HashMap::new(),
            curr: HashMap::new(),
            min_vr: HashMap::new(),
            host: HashMap::new(),
            ivh_pending: HashMap::new(),
            throttled: HashMap::new(),
            degraded: HashMap::new(),
            admitted: HashMap::new(),
            placed: HashMap::new(),
            failed_hosts: HashMap::new(),
            host_occ: HashMap::new(),
            vm_class: HashMap::new(),
            llc_cumulative: HashMap::new(),
            active_domain: None,
            domain_cycle_ns: 0,
            recent: std::collections::VecDeque::with_capacity(CONTEXT + 1),
            events: 0,
            violations: 0,
            first: None,
        }
    }

    /// Raises the work-rate ceiling (hosts with boosted cores).
    pub fn set_capacity_ceiling(&mut self, per_ns: f64) {
        self.cap_ceiling = per_ns;
    }

    /// Violations detected so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The first violation, if any.
    pub fn first(&self) -> Option<&Violation> {
        self.first.as_ref()
    }

    /// Final report for the stream seen so far.
    pub fn report(&self) -> CheckReport {
        CheckReport {
            events: self.events,
            violations: self.violations,
            first: self.first.clone(),
            pending_ivh: self.ivh_pending.len(),
            still_throttled: self.throttled.len(),
            unplaced_admissions: self.admitted.len(),
            stranded_vms: self
                .placed
                .values()
                .filter(|h| self.failed_hosts.contains_key(h))
                .count(),
        }
    }

    fn flag(&mut self, kind: ViolationKind, event: TraceEvent, detail: String) {
        self.violations += 1;
        if self.first.is_none() {
            self.first = Some(Violation {
                kind,
                event,
                detail,
                context: self.recent.iter().copied().collect(),
            });
        }
    }

    /// Feeds one event through every applicable invariant.
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.events += 1;
        let ev = *ev;
        match ev.kind {
            EventKind::ContextSwitch {
                vcpu,
                prev,
                next,
                min_vruntime,
                ..
            } => {
                let key = (ev.vm, vcpu);
                let floor = self.min_vr.entry(key).or_insert(0);
                if min_vruntime < *floor {
                    let was = *floor;
                    self.flag(
                        ViolationKind::VruntimeInversion,
                        ev,
                        format!("min_vruntime {min_vruntime} after {was} on vcpu {vcpu}"),
                    );
                } else {
                    *floor = min_vruntime;
                }
                if let Some(t) = next {
                    if let Some(&on) = self.running.get(&(ev.vm, t)) {
                        self.flag(
                            ViolationKind::DoubleRun,
                            ev,
                            format!("task {t} switched in on vcpu {vcpu} while running on {on}"),
                        );
                    }
                    if let Some(&busy) = self.curr.get(&key) {
                        self.flag(
                            ViolationKind::SwitchInWhileBusy,
                            ev,
                            format!("vcpu {vcpu} still runs task {busy}"),
                        );
                    }
                    self.running.insert((ev.vm, t), vcpu);
                    self.curr.insert(key, t);
                }
                if let Some(t) = prev {
                    match self.curr.get(&key) {
                        Some(&c) if c == t => {
                            self.curr.remove(&key);
                            self.running.remove(&(ev.vm, t));
                        }
                        other => {
                            let have = other.copied();
                            self.flag(
                                ViolationKind::MismatchedSwitchOut,
                                ev,
                                format!("switch-out of task {t} but vcpu {vcpu} runs {have:?}"),
                            );
                        }
                    }
                }
            }
            EventKind::TaskMigrate { task, from, to, .. } => {
                if let Some(&on) = self.running.get(&(ev.vm, task)) {
                    self.flag(
                        ViolationKind::MigrateWhileRunning,
                        ev,
                        format!("task {task} migrated {from}->{to} while running on {on}"),
                    );
                }
            }
            EventKind::VcpuResume { vcpu, .. } => {
                let key = (ev.vm, vcpu);
                let state = *self.host.get(&key).unwrap_or(&HostCpu::Unknown);
                match state {
                    HostCpu::Running => self.flag(
                        ViolationKind::RunOverlap,
                        ev,
                        format!("vcpu {vcpu} resumed while already running"),
                    ),
                    HostCpu::Waiting { since, steal } => {
                        let wall = ev.at.since(since);
                        if steal != wall {
                            self.flag(
                                ViolationKind::StealAccountingGap,
                                ev,
                                format!(
                                    "vcpu {vcpu} waited {wall} ns but accrued {steal} ns steal"
                                ),
                            );
                        }
                    }
                    HostCpu::Idle | HostCpu::Unknown => {}
                }
                self.host.insert(key, HostCpu::Running);
                self.throttled.remove(&key);
                if let (Some((idx, active)), Some(&class)) =
                    (self.active_domain, self.vm_class.get(&ev.vm))
                {
                    if class != active {
                        self.flag(
                            ViolationKind::CrossDomainExecution,
                            ev,
                            format!(
                                "vcpu {vcpu} of class {class:?} resumed during slice {idx} \
                                 of class {active:?}"
                            ),
                        );
                    }
                }
            }
            EventKind::VcpuPreempt { vcpu, reason } => {
                let key = (ev.vm, vcpu);
                if reason == PreemptReason::Throttle {
                    if let Some(&since) = self.throttled.get(&key) {
                        self.flag(
                            ViolationKind::ThrottleWithoutRefill,
                            ev,
                            format!("vcpu {vcpu} throttled again (throttled since {since})"),
                        );
                    }
                    self.throttled.insert(key, ev.at);
                }
                let next = match reason {
                    PreemptReason::Halt => HostCpu::Idle,
                    _ => HostCpu::Waiting {
                        since: ev.at,
                        steal: 0,
                    },
                };
                self.host.insert(key, next);
            }
            EventKind::VcpuWake { vcpu } => {
                self.throttled.remove(&(ev.vm, vcpu));
                self.host.insert(
                    (ev.vm, vcpu),
                    HostCpu::Waiting {
                        since: ev.at,
                        steal: 0,
                    },
                );
            }
            EventKind::VcpuHalt { vcpu } => {
                let key = (ev.vm, vcpu);
                self.throttled.remove(&key);
                if let Some(HostCpu::Waiting { since, steal }) = self.host.get(&key).copied() {
                    let wall = ev.at.since(since);
                    if steal != wall {
                        self.flag(
                            ViolationKind::StealAccountingGap,
                            ev,
                            format!(
                                "vcpu {vcpu} halted after waiting {wall} ns with {steal} ns steal"
                            ),
                        );
                    }
                }
                self.host.insert(key, HostCpu::Idle);
            }
            EventKind::StealAccrue { vcpu, delta_ns } => {
                let key = (ev.vm, vcpu);
                match self.host.get_mut(&key) {
                    Some(HostCpu::Waiting { since, steal }) => {
                        *steal += delta_ns;
                        let elapsed = ev.at.since(*since);
                        if *steal > elapsed {
                            let got = *steal;
                            self.flag(
                                ViolationKind::StealAccountingGap,
                                ev,
                                format!(
                                    "vcpu {vcpu} accrued {got} ns steal in {elapsed} ns of waiting"
                                ),
                            );
                        }
                    }
                    Some(HostCpu::Unknown) | None => {}
                    _ => self.flag(
                        ViolationKind::StealWhileNotWaiting,
                        ev,
                        format!("vcpu {vcpu} accrued {delta_ns} ns steal while not waiting"),
                    ),
                }
            }
            EventKind::TaskCharge {
                task,
                active_ns,
                work,
                ..
            } => {
                let ceiling = self.cap_ceiling * active_ns as f64 * (1.0 + 1e-6) + 1e-6;
                if work > ceiling {
                    self.flag(
                        ViolationKind::WorkExceedsCapacity,
                        ev,
                        format!(
                            "task {task} accrued {work:.1} work in {active_ns} active ns \
                             (ceiling {ceiling:.1})"
                        ),
                    );
                }
            }
            EventKind::IvhPull { target, phase, .. } => {
                let key = (ev.vm, target);
                match phase {
                    IvhPhase::Attempt => {
                        if let Some(&t) = self.ivh_pending.get(&key) {
                            self.flag(
                                ViolationKind::IvhDuplicateAttempt,
                                ev,
                                format!("pull toward vcpu {target} already pending (task {t})"),
                            );
                        }
                        if let EventKind::IvhPull { task, .. } = ev.kind {
                            self.ivh_pending.insert(key, task);
                        }
                    }
                    IvhPhase::Complete | IvhPhase::Abandon => {
                        if self.ivh_pending.remove(&key).is_none() {
                            self.flag(
                                ViolationKind::IvhUnmatchedResolution,
                                ev,
                                format!("{phase:?} with no outstanding attempt on vcpu {target}"),
                            );
                        }
                    }
                }
            }
            EventKind::BandwidthSet {
                vcpu,
                quota_ns,
                period_ns,
            } => {
                if quota_ns > period_ns {
                    self.flag(
                        ViolationKind::QuotaExceedsPeriod,
                        ev,
                        format!("vcpu {vcpu} quota {quota_ns} ns > period {period_ns} ns"),
                    );
                }
            }
            EventKind::PeltDecay {
                task,
                load_before,
                load_after,
                idle_ns,
            } => {
                // Sleep decay multiplies by a factor in (0, 1]; allow only
                // f64 rounding slack above the starting load.
                if load_after > load_before * (1.0 + 1e-9) + 1e-9 {
                    self.flag(
                        ViolationKind::PeltLoadIncrease,
                        ev,
                        format!(
                            "task {task} load grew {load_before:.3} -> {load_after:.3} \
                             across {idle_ns} ns idle"
                        ),
                    );
                }
            }
            EventKind::DegradedEnter { .. } => {
                if let Some(&since) = self.degraded.get(&ev.vm) {
                    self.flag(
                        ViolationKind::DegradedStateMismatch,
                        ev,
                        format!("enter while degraded since {since}"),
                    );
                }
                self.degraded.insert(ev.vm, ev.at);
            }
            EventKind::DegradedExit { after_ns } => match self.degraded.remove(&ev.vm) {
                None => self.flag(
                    ViolationKind::DegradedStateMismatch,
                    ev,
                    "exit while not degraded".into(),
                ),
                Some(entered) => {
                    let wall = ev.at.since(entered);
                    if after_ns != wall {
                        self.flag(
                            ViolationKind::DegradedStateMismatch,
                            ev,
                            format!("exit claims {after_ns} ns degraded but entered {wall} ns ago"),
                        );
                    }
                }
            },
            EventKind::IvhAbandonedByWatchdog { target, .. } => {
                // Resolves the outstanding attempt exactly like an Abandon.
                if self.ivh_pending.remove(&(ev.vm, target)).is_none() {
                    self.flag(
                        ViolationKind::IvhUnmatchedResolution,
                        ev,
                        format!("watchdog abandon with no outstanding attempt on vcpu {target}"),
                    );
                }
            }
            EventKind::VmAdmitted { uid, .. } => {
                // Re-admitting a live uid is tolerated only after departure;
                // a duplicate admission of a placed VM surfaces at the next
                // VmPlaced as a DuplicatePlacement.
                self.admitted.insert(uid, ev.at);
            }
            EventKind::VmPlaced {
                uid,
                host,
                occupied,
                cap,
                ..
            } => {
                if self.admitted.remove(&uid).is_none() {
                    self.flag(
                        ViolationKind::PlacementWithoutAdmission,
                        ev,
                        format!("vm {uid} placed on host {host} without admission"),
                    );
                }
                if let Some(&on) = self.placed.get(&uid) {
                    self.flag(
                        ViolationKind::DuplicatePlacement,
                        ev,
                        format!("vm {uid} placed on host {host} while already on host {on}"),
                    );
                }
                if occupied > cap {
                    self.flag(
                        ViolationKind::OvercommitCapExceeded,
                        ev,
                        format!("host {host} committed {occupied} vCPUs over cap {cap}"),
                    );
                }
                if let Some(&since) = self.failed_hosts.get(&host) {
                    self.flag(
                        ViolationKind::PlacementOntoFailedHost,
                        ev,
                        format!("vm {uid} placed on host {host} (failed since {since})"),
                    );
                }
                self.placed.insert(uid, host);
                self.host_occ.insert(host, occupied);
            }
            EventKind::VmDeparted { uid, host, vcpus } => {
                match self.placed.remove(&uid) {
                    Some(on) if on == host => {}
                    Some(on) => {
                        self.flag(
                            ViolationKind::DepartWithoutPlacement,
                            ev,
                            format!("vm {uid} departed host {host} but was placed on host {on}"),
                        );
                    }
                    None => {
                        self.flag(
                            ViolationKind::DepartWithoutPlacement,
                            ev,
                            format!("vm {uid} departed host {host} without being placed"),
                        );
                    }
                }
                if let Some(occ) = self.host_occ.get_mut(&host) {
                    *occ = occ.saturating_sub(u64::from(vcpus));
                }
            }
            EventKind::HostFailed { host, kind, .. } => {
                if let Some(&since) = self.failed_hosts.get(&host) {
                    self.flag(
                        ViolationKind::HostFailureStateMismatch,
                        ev,
                        format!("host {host} failed ({kind:?}) while already failed since {since}"),
                    );
                }
                self.failed_hosts.insert(host, ev.at);
            }
            EventKind::HostRecovered { host, down_ns } => match self.failed_hosts.remove(&host) {
                None => self.flag(
                    ViolationKind::HostFailureStateMismatch,
                    ev,
                    format!("host {host} recovered while not failed"),
                ),
                Some(since) => {
                    let wall = ev.at.since(since);
                    if down_ns != wall {
                        self.flag(
                            ViolationKind::HostFailureStateMismatch,
                            ev,
                            format!(
                                "host {host} recovery claims {down_ns} ns down \
                                 but failed {wall} ns ago"
                            ),
                        );
                    }
                }
            },
            EventKind::VmMigrated {
                uid,
                from,
                to,
                vcpus,
                from_occupied,
                to_occupied,
                cap,
            } => {
                match self.placed.get(&uid) {
                    Some(&on) if on == from => {}
                    Some(&on) => self.flag(
                        ViolationKind::MigrationWithoutPlacement,
                        ev,
                        format!("vm {uid} migrated off host {from} but was placed on host {on}"),
                    ),
                    None => self.flag(
                        ViolationKind::MigrationWithoutPlacement,
                        ev,
                        format!("vm {uid} migrated {from}->{to} without being placed"),
                    ),
                }
                if let Some(&since) = self.failed_hosts.get(&to) {
                    self.flag(
                        ViolationKind::PlacementOntoFailedHost,
                        ev,
                        format!("vm {uid} migrated onto host {to} (failed since {since})"),
                    );
                }
                // Conservation: the source loses exactly `vcpus`, the
                // destination gains exactly `vcpus`. Unknown hosts (no
                // prior occupancy snapshot) initialize without checking,
                // like `HostCpu::Unknown`.
                if let Some(&prev) = self.host_occ.get(&from) {
                    let expect = prev.saturating_sub(u64::from(vcpus));
                    if from_occupied != expect {
                        self.flag(
                            ViolationKind::MigrationOccupancyMismatch,
                            ev,
                            format!(
                                "vm {uid} ({vcpus} vCPUs) left host {from} at {prev} \
                                 committed, but the source claims {from_occupied} \
                                 (expected {expect})"
                            ),
                        );
                    }
                }
                if let Some(&prev) = self.host_occ.get(&to) {
                    let expect = prev + u64::from(vcpus);
                    if to_occupied != expect {
                        self.flag(
                            ViolationKind::MigrationOccupancyMismatch,
                            ev,
                            format!(
                                "vm {uid} ({vcpus} vCPUs) landed on host {to} at {prev} \
                                 committed, but the destination claims {to_occupied} \
                                 (expected {expect})"
                            ),
                        );
                    }
                }
                if to_occupied > cap {
                    self.flag(
                        ViolationKind::OvercommitCapExceeded,
                        ev,
                        format!("host {to} committed {to_occupied} vCPUs over cap {cap}"),
                    );
                }
                self.placed.insert(uid, to);
                self.host_occ.insert(from, from_occupied);
                self.host_occ.insert(to, to_occupied);
            }
            EventKind::DomainAssigned { class } => {
                self.vm_class.insert(ev.vm, class);
            }
            EventKind::DomainSwitch {
                index,
                class,
                slice_ns,
                period_ns,
            } => {
                if slice_ns == 0 {
                    self.flag(
                        ViolationKind::DomainSliceSumMismatch,
                        ev,
                        format!("slice {index} ({class:?}) has zero length"),
                    );
                }
                if slice_ns > period_ns {
                    self.flag(
                        ViolationKind::DomainSliceSumMismatch,
                        ev,
                        format!(
                            "slice {index} ({class:?}) is {slice_ns} ns, \
                             longer than the {period_ns} ns period"
                        ),
                    );
                }
                if index == 0 {
                    let cycle = self.domain_cycle_ns;
                    if cycle > 0 && cycle != period_ns {
                        self.flag(
                            ViolationKind::DomainSliceSumMismatch,
                            ev,
                            format!(
                                "previous rotation's slices sum to {cycle} ns, \
                                 not the {period_ns} ns period"
                            ),
                        );
                    }
                    self.domain_cycle_ns = 0;
                }
                self.domain_cycle_ns += slice_ns;
                self.active_domain = Some((index, class));
            }
            EventKind::StealAccounted {
                index,
                class,
                threads,
                slice_ns,
                entitled_ns,
                used_ns,
                stolen_ns,
            } => {
                let expect = slice_ns * u64::from(threads);
                if entitled_ns != expect {
                    self.flag(
                        ViolationKind::StealConservationMismatch,
                        ev,
                        format!(
                            "slice {index} ({class:?}) claims {entitled_ns} ns entitled, \
                             but {slice_ns} ns x {threads} threads = {expect} ns"
                        ),
                    );
                }
                if used_ns + stolen_ns > entitled_ns {
                    self.flag(
                        ViolationKind::StealConservationMismatch,
                        ev,
                        format!(
                            "slice {index} ({class:?}) accounts used {used_ns} + \
                             stolen {stolen_ns} ns over {entitled_ns} ns entitled"
                        ),
                    );
                }
            }
            EventKind::LlcOccupancySample {
                socket,
                occupied_bytes,
                llc_bytes,
                inserted_bytes,
                evicted_bytes,
                decayed_bytes,
            } => {
                // Relative slack covers float accumulation over a long
                // run; the absolute byte covers tiny caches.
                let slack = 1.0 + 1e-6 * llc_bytes.abs();
                if occupied_bytes > llc_bytes + slack {
                    self.flag(
                        ViolationKind::LlcOccupancyOverflow,
                        ev,
                        format!(
                            "socket {socket} holds {occupied_bytes:.0} bytes \
                             in a {llc_bytes:.0}-byte LLC"
                        ),
                    );
                }
                let key = (ev.vm, socket);
                if let Some(&(pi, pe, pd)) = self.llc_cumulative.get(&key) {
                    let eps = 1.0;
                    if inserted_bytes < pi - eps
                        || evicted_bytes < pe - eps
                        || decayed_bytes < pd - eps
                    {
                        self.flag(
                            ViolationKind::LlcConservationMismatch,
                            ev,
                            format!(
                                "socket {socket} cumulative counters moved backwards: \
                                 inserted {pi:.0}->{inserted_bytes:.0}, \
                                 evicted {pe:.0}->{evicted_bytes:.0}, \
                                 decayed {pd:.0}->{decayed_bytes:.0}"
                            ),
                        );
                    }
                }
                self.llc_cumulative
                    .insert(key, (inserted_bytes, evicted_bytes, decayed_bytes));
                let balance = inserted_bytes - evicted_bytes - decayed_bytes;
                let tol = (1e-6 * inserted_bytes.abs()).max(1.0);
                if (occupied_bytes - balance).abs() > tol {
                    self.flag(
                        ViolationKind::LlcConservationMismatch,
                        ev,
                        format!(
                            "socket {socket} occupies {occupied_bytes:.0} bytes but \
                             inserted {inserted_bytes:.0} - evicted {evicted_bytes:.0} \
                             - decayed {decayed_bytes:.0} = {balance:.0}"
                        ),
                    );
                }
            }
            EventKind::CacheAwarePick {
                task,
                chosen,
                domain,
                pressure,
                best_pressure,
            } => {
                if pressure > best_pressure + CACHE_PICK_MARGIN + 1e-9 {
                    self.flag(
                        ViolationKind::CacheAwarePickUnjustified,
                        ev,
                        format!(
                            "task {task} placed on vcpu {chosen} in domain {domain} at \
                             pressure {pressure:.3}, but the best domain sat at \
                             {best_pressure:.3} (margin {CACHE_PICK_MARGIN})"
                        ),
                    );
                }
            }
            EventKind::TaskWake { .. }
            | EventKind::ReschedIpi { .. }
            | EventKind::ProbeSample { .. }
            | EventKind::BvsSelect { .. }
            | EventKind::FaultInjected { .. }
            | EventKind::ProbeRejected { .. }
            | EventKind::CacheProbe { .. }
            | EventKind::ProbeRetry { .. } => {}
        }
        self.recent.push_back(ev);
        if self.recent.len() > CONTEXT {
            self.recent.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MigrateKind, SwitchReason};

    fn ev(at: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime(at),
            vm: 0,
            kind,
        }
    }

    fn switch_in(at: u64, vcpu: u16, task: u32, min_vruntime: u64) -> TraceEvent {
        ev(
            at,
            EventKind::ContextSwitch {
                vcpu,
                prev: None,
                next: Some(task),
                reason: SwitchReason::Pick,
                min_vruntime,
            },
        )
    }

    fn switch_out(at: u64, vcpu: u16, task: u32, min_vruntime: u64) -> TraceEvent {
        ev(
            at,
            EventKind::ContextSwitch {
                vcpu,
                prev: Some(task),
                next: None,
                reason: SwitchReason::Sleep,
                min_vruntime,
            },
        )
    }

    fn check(events: &[TraceEvent]) -> InvariantChecker {
        let mut c = InvariantChecker::new();
        for e in events {
            c.observe(e);
        }
        c
    }

    #[test]
    fn clean_stream_has_no_violations() {
        let c = check(&[
            ev(0, EventKind::VcpuWake { vcpu: 0 }),
            ev(
                100,
                EventKind::StealAccrue {
                    vcpu: 0,
                    delta_ns: 100,
                },
            ),
            ev(100, EventKind::VcpuResume { vcpu: 0, thread: 0 }),
            switch_in(100, 0, 7, 0),
            ev(
                600,
                EventKind::TaskCharge {
                    task: 7,
                    vcpu: 0,
                    active_ns: 500,
                    work: 500.0 * 1024.0,
                },
            ),
            switch_out(600, 0, 7, 500),
            ev(
                600,
                EventKind::VcpuPreempt {
                    vcpu: 0,
                    reason: PreemptReason::Halt,
                },
            ),
        ]);
        let r = c.report();
        assert!(r.ok(), "unexpected violation: {:?}", r.first);
        assert_eq!(r.events, 7);
    }

    #[test]
    fn double_run_detected() {
        let c = check(&[switch_in(10, 0, 7, 0), switch_in(20, 1, 7, 0)]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::DoubleRun);
    }

    #[test]
    fn switch_in_while_busy_detected() {
        let c = check(&[switch_in(10, 0, 7, 0), switch_in(20, 0, 8, 0)]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::SwitchInWhileBusy);
    }

    #[test]
    fn mismatched_switch_out_detected() {
        let c = check(&[switch_in(10, 0, 7, 0), switch_out(20, 0, 9, 0)]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::MismatchedSwitchOut);
    }

    #[test]
    fn steal_accounting_gap_detected_on_resume() {
        // Waits 1000 ns but only 400 ns of steal were accrued.
        let c = check(&[
            ev(0, EventKind::VcpuWake { vcpu: 2 }),
            ev(
                1000,
                EventKind::StealAccrue {
                    vcpu: 2,
                    delta_ns: 400,
                },
            ),
            ev(1000, EventKind::VcpuResume { vcpu: 2, thread: 0 }),
        ]);
        let v = c.first().unwrap();
        assert_eq!(v.kind, ViolationKind::StealAccountingGap);
        assert!(!v.context.is_empty(), "violation carries context");
    }

    #[test]
    fn over_accrued_steal_detected_immediately() {
        let c = check(&[
            ev(0, EventKind::VcpuWake { vcpu: 2 }),
            ev(
                100,
                EventKind::StealAccrue {
                    vcpu: 2,
                    delta_ns: 400,
                },
            ),
        ]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::StealAccountingGap);
    }

    #[test]
    fn steal_while_running_detected() {
        let c = check(&[
            ev(0, EventKind::VcpuResume { vcpu: 1, thread: 0 }),
            ev(
                50,
                EventKind::StealAccrue {
                    vcpu: 1,
                    delta_ns: 50,
                },
            ),
        ]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::StealWhileNotWaiting);
    }

    #[test]
    fn vruntime_inversion_detected() {
        let c = check(&[
            switch_in(10, 0, 7, 1_000_000),
            switch_out(20, 0, 7, 999_000),
        ]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::VruntimeInversion);
    }

    #[test]
    fn work_exceeding_capacity_detected() {
        let c = check(&[ev(
            10,
            EventKind::TaskCharge {
                task: 3,
                vcpu: 0,
                active_ns: 100,
                work: 200.0 * 1024.0,
            },
        )]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::WorkExceedsCapacity);
    }

    #[test]
    fn migrate_while_running_detected() {
        let c = check(&[
            switch_in(10, 0, 7, 0),
            ev(
                20,
                EventKind::TaskMigrate {
                    task: 7,
                    from: 0,
                    to: 1,
                    kind: MigrateKind::Balance,
                },
            ),
        ]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::MigrateWhileRunning);
    }

    #[test]
    fn ivh_pull_lifecycle_checked() {
        let pull = |at, phase| {
            ev(
                at,
                EventKind::IvhPull {
                    task: 5,
                    src: 0,
                    target: 3,
                    phase,
                },
            )
        };
        // Attempt → complete is clean.
        let c = check(&[pull(10, IvhPhase::Attempt), pull(20, IvhPhase::Complete)]);
        assert!(c.report().ok());
        // Resolution without an attempt.
        let c = check(&[pull(10, IvhPhase::Abandon)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::IvhUnmatchedResolution
        );
        // Double attempt on one target.
        let c = check(&[pull(10, IvhPhase::Attempt), pull(20, IvhPhase::Attempt)]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::IvhDuplicateAttempt);
        // In-flight at stream end: reported, not a violation.
        let c = check(&[pull(10, IvhPhase::Attempt)]);
        let r = c.report();
        assert!(r.ok());
        assert_eq!(r.pending_ivh, 1);
    }

    #[test]
    fn run_overlap_detected() {
        let c = check(&[
            ev(0, EventKind::VcpuResume { vcpu: 1, thread: 0 }),
            ev(10, EventKind::VcpuResume { vcpu: 1, thread: 1 }),
        ]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::RunOverlap);
    }

    #[test]
    fn quota_exceeding_period_detected() {
        let c = check(&[ev(
            0,
            EventKind::BandwidthSet {
                vcpu: 0,
                quota_ns: 2_000_000,
                period_ns: 1_000_000,
            },
        )]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::QuotaExceedsPeriod);
        // quota == period is a full (unthrottled) allocation: clean.
        let c = check(&[ev(
            0,
            EventKind::BandwidthSet {
                vcpu: 0,
                quota_ns: 1_000_000,
                period_ns: 1_000_000,
            },
        )]);
        assert!(c.report().ok());
    }

    #[test]
    fn throttle_requires_refill_before_rethrottle() {
        let throttle = |at| {
            ev(
                at,
                EventKind::VcpuPreempt {
                    vcpu: 0,
                    reason: PreemptReason::Throttle,
                },
            )
        };
        // Throttle → resume → throttle is the expected refill cycle.
        let c = check(&[
            throttle(10),
            ev(
                30,
                EventKind::StealAccrue {
                    vcpu: 0,
                    delta_ns: 20,
                },
            ),
            ev(30, EventKind::VcpuResume { vcpu: 0, thread: 0 }),
            throttle(50),
        ]);
        let r = c.report();
        assert!(r.ok(), "unexpected violation: {:?}", r.first);
        assert_eq!(r.still_throttled, 1);
        // Two throttles with no resume/halt/wake in between.
        let c = check(&[throttle(10), throttle(50)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::ThrottleWithoutRefill
        );
    }

    #[test]
    fn pelt_decay_must_not_increase_load() {
        let decay = |before: f64, after: f64| {
            ev(
                10,
                EventKind::PeltDecay {
                    task: 1,
                    load_before: before,
                    load_after: after,
                    idle_ns: 1_000_000,
                },
            )
        };
        assert!(check(&[decay(512.0, 256.0)]).report().ok());
        assert!(check(&[decay(512.0, 512.0)]).report().ok());
        let c = check(&[decay(256.0, 256.1)]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::PeltLoadIncrease);
    }

    #[test]
    fn degraded_mode_alternation_checked() {
        let enter = |at| {
            ev(
                at,
                EventKind::DegradedEnter {
                    reason: crate::event::DegradeReason::LowConfidence(crate::ProbeKind::Vcap),
                },
            )
        };
        // Enter → exit with a truthful duration is clean.
        let c = check(&[
            enter(100),
            ev(350, EventKind::DegradedExit { after_ns: 250 }),
        ]);
        assert!(c.report().ok(), "{:?}", c.first());
        // Double enter.
        let c = check(&[enter(100), enter(200)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::DegradedStateMismatch
        );
        // Exit without enter.
        let c = check(&[ev(100, EventKind::DegradedExit { after_ns: 10 })]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::DegradedStateMismatch
        );
        // Exit lying about its duration.
        let c = check(&[
            enter(100),
            ev(350, EventKind::DegradedExit { after_ns: 99 }),
        ]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::DegradedStateMismatch
        );
    }

    #[test]
    fn fleet_placement_lifecycle_checked() {
        let admit = |at, uid| {
            ev(
                at,
                EventKind::VmAdmitted {
                    uid,
                    vcpus: 2,
                    prio: crate::PriorityClass::Standard,
                },
            )
        };
        let place = |at, uid, host, occupied, cap| {
            ev(
                at,
                EventKind::VmPlaced {
                    uid,
                    host,
                    vcpus: 2,
                    occupied,
                    cap,
                },
            )
        };
        let depart = |at, uid, host| {
            ev(
                at,
                EventKind::VmDeparted {
                    uid,
                    host,
                    vcpus: 2,
                },
            )
        };
        // Admit → place → depart is clean; occupied == cap is allowed.
        let c = check(&[admit(10, 7), place(20, 7, 1, 6, 6), depart(90, 7, 1)]);
        let r = c.report();
        assert!(r.ok(), "unexpected violation: {:?}", r.first);
        assert_eq!(r.unplaced_admissions, 0);
        // Admitted but never placed (rejected): clean, but reported.
        let c = check(&[admit(10, 7)]);
        let r = c.report();
        assert!(r.ok());
        assert_eq!(r.unplaced_admissions, 1);
        // Placement over the overcommit cap.
        let c = check(&[admit(10, 7), place(20, 7, 0, 9, 8)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::OvercommitCapExceeded
        );
        // Placement without admission.
        let c = check(&[place(20, 7, 0, 2, 8)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::PlacementWithoutAdmission
        );
        // Placing an already-placed VM again.
        let c = check(&[
            admit(10, 7),
            place(20, 7, 0, 2, 8),
            admit(30, 7),
            place(40, 7, 1, 2, 8),
        ]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::DuplicatePlacement);
        // Departing a VM that was never placed, and from the wrong host.
        let c = check(&[depart(20, 7, 0)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::DepartWithoutPlacement
        );
        let c = check(&[admit(10, 7), place(20, 7, 0, 2, 8), depart(30, 7, 1)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::DepartWithoutPlacement
        );
    }

    #[test]
    fn host_failure_migration_laws_checked() {
        use crate::event::HostFailKind;
        let admit = |at, uid| {
            ev(
                at,
                EventKind::VmAdmitted {
                    uid,
                    vcpus: 2,
                    prio: crate::PriorityClass::Standard,
                },
            )
        };
        let place = |at, uid, host, occupied| {
            ev(
                at,
                EventKind::VmPlaced {
                    uid,
                    host,
                    vcpus: 2,
                    occupied,
                    cap: 8,
                },
            )
        };
        let fail = |at, host| {
            ev(
                at,
                EventKind::HostFailed {
                    host,
                    kind: HostFailKind::Crash,
                    residents: 1,
                },
            )
        };
        let migrate = |at, uid, from, to, from_occ, to_occ| {
            ev(
                at,
                EventKind::VmMigrated {
                    uid,
                    from,
                    to,
                    vcpus: 2,
                    from_occupied: from_occ,
                    to_occupied: to_occ,
                    cap: 8,
                },
            )
        };
        // Place → fail → evacuate → recover, with truthful occupancy and
        // down time: clean, and nothing left stranded.
        let c = check(&[
            admit(10, 7),
            place(20, 7, 0, 2),
            fail(100, 0),
            migrate(110, 7, 0, 1, 0, 2),
            ev(
                400,
                EventKind::HostRecovered {
                    host: 0,
                    down_ns: 300,
                },
            ),
        ]);
        let r = c.report();
        assert!(r.ok(), "unexpected violation: {:?}", r.first);
        assert_eq!(r.stranded_vms, 0);
        // A resident still placed on the failed host at stream end is
        // stranded (informational, not a violation).
        let c = check(&[admit(10, 7), place(20, 7, 0, 2), fail(100, 0)]);
        let r = c.report();
        assert!(r.ok(), "unexpected violation: {:?}", r.first);
        assert_eq!(r.stranded_vms, 1);
        // Placement onto a failed host.
        let c = check(&[fail(10, 0), admit(20, 7), place(30, 7, 0, 2)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::PlacementOntoFailedHost
        );
        // Migration onto a failed host.
        let c = check(&[
            admit(10, 7),
            place(20, 7, 0, 2),
            fail(30, 1),
            fail(40, 0),
            migrate(50, 7, 0, 1, 0, 2),
        ]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::PlacementOntoFailedHost
        );
        // Migration of a VM that was never placed, and from the wrong host.
        let c = check(&[migrate(10, 7, 0, 1, 0, 2)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::MigrationWithoutPlacement
        );
        let c = check(&[admit(10, 7), place(20, 7, 0, 2), migrate(30, 7, 2, 1, 0, 2)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::MigrationWithoutPlacement
        );
        // Occupancy not conserved: the source claims it lost nothing.
        let c = check(&[admit(10, 7), place(20, 7, 0, 2), migrate(30, 7, 0, 1, 2, 2)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::MigrationOccupancyMismatch
        );
        // Destination over its overcommit cap.
        let c = check(&[admit(10, 7), place(20, 7, 0, 2), migrate(30, 7, 0, 1, 0, 9)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::OvercommitCapExceeded
        );
        // Double failure, recovery without failure, recovery lying about
        // its down time.
        let c = check(&[fail(10, 0), fail(20, 0)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::HostFailureStateMismatch
        );
        let c = check(&[ev(
            10,
            EventKind::HostRecovered {
                host: 0,
                down_ns: 5,
            },
        )]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::HostFailureStateMismatch
        );
        let c = check(&[
            fail(10, 0),
            ev(
                400,
                EventKind::HostRecovered {
                    host: 0,
                    down_ns: 5,
                },
            ),
        ]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::HostFailureStateMismatch
        );
    }

    #[test]
    fn watchdog_abandon_resolves_pending_pull() {
        let attempt = ev(
            10,
            EventKind::IvhPull {
                task: 5,
                src: 0,
                target: 3,
                phase: IvhPhase::Attempt,
            },
        );
        let watchdog = ev(
            50,
            EventKind::IvhAbandonedByWatchdog {
                task: 5,
                src: 0,
                target: 3,
                waited_ns: 40,
            },
        );
        let c = check(&[attempt, watchdog]);
        let r = c.report();
        assert!(r.ok(), "{:?}", r.first);
        assert_eq!(r.pending_ivh, 0);
        // Watchdog abandon with nothing outstanding is a violation.
        let c = check(&[watchdog]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::IvhUnmatchedResolution
        );
    }

    #[test]
    fn domain_slice_sums_checked_over_rotation_cycles() {
        let switch = |at, index, slice_ns, period_ns| {
            ev(
                at,
                EventKind::DomainSwitch {
                    index,
                    class: if index == 0 {
                        PriorityClass::Standard
                    } else {
                        PriorityClass::Batch
                    },
                    slice_ns,
                    period_ns,
                },
            )
        };
        // Two full 2+2 ms rotations of a 4 ms period: clean.
        let c = check(&[
            switch(0, 0, 2_000_000, 4_000_000),
            switch(2_000_000, 1, 2_000_000, 4_000_000),
            switch(4_000_000, 0, 2_000_000, 4_000_000),
            switch(6_000_000, 1, 2_000_000, 4_000_000),
        ]);
        assert!(c.report().ok(), "{:?}", c.first());
        // Zero-length slice.
        let c = check(&[switch(0, 0, 0, 4_000_000)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::DomainSliceSumMismatch
        );
        // Slice longer than the period.
        let c = check(&[switch(0, 0, 5_000_000, 4_000_000)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::DomainSliceSumMismatch
        );
        // A cycle whose slices undershoot the period.
        let c = check(&[
            switch(0, 0, 2_000_000, 4_000_000),
            switch(2_000_000, 1, 1_000_000, 4_000_000),
            switch(3_000_000, 0, 2_000_000, 4_000_000),
        ]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::DomainSliceSumMismatch
        );
    }

    #[test]
    fn cross_domain_execution_detected() {
        let assigned = |at, vm, class| TraceEvent {
            at: SimTime(at),
            vm,
            kind: EventKind::DomainAssigned { class },
        };
        let switch = |at, class| {
            ev(
                at,
                EventKind::DomainSwitch {
                    index: 0,
                    class,
                    slice_ns: 4_000_000,
                    period_ns: 4_000_000,
                },
            )
        };
        let resume = |at, vm| TraceEvent {
            at: SimTime(at),
            vm,
            kind: EventKind::VcpuResume { vcpu: 0, thread: 0 },
        };
        // Standard VM resuming in the Standard slice: clean.
        let c = check(&[
            assigned(0, 0, PriorityClass::Standard),
            switch(0, PriorityClass::Standard),
            resume(10, 0),
        ]);
        assert!(c.report().ok(), "{:?}", c.first());
        // A Batch VM resuming in the Standard slice breaks the gate.
        let c = check(&[
            assigned(0, 1, PriorityClass::Batch),
            switch(0, PriorityClass::Standard),
            resume(10, 1),
        ]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::CrossDomainExecution);
        // Unassigned VMs (host loads, non-domain runs) are not gated.
        let c = check(&[switch(0, PriorityClass::Standard), resume(10, 3)]);
        assert!(c.report().ok(), "{:?}", c.first());
    }

    #[test]
    fn steal_accounting_conservation_checked() {
        let acct = |entitled, used, stolen| {
            ev(
                10,
                EventKind::StealAccounted {
                    index: 0,
                    class: PriorityClass::Standard,
                    threads: 4,
                    slice_ns: 2_000_000,
                    entitled_ns: entitled,
                    used_ns: used,
                    stolen_ns: stolen,
                },
            )
        };
        // entitled == slice * threads, used + stolen within it: clean.
        assert!(check(&[acct(8_000_000, 7_000_000, 0)]).report().ok());
        // Entitlement arithmetic wrong.
        let c = check(&[acct(6_000_000, 1_000_000, 0)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::StealConservationMismatch
        );
        // used + stolen over the entitlement.
        let c = check(&[acct(8_000_000, 7_000_000, 2_000_000)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::StealConservationMismatch
        );
    }

    #[test]
    fn llc_occupancy_laws_checked() {
        let sample = |at, occupied: f64, inserted: f64, evicted: f64, decayed: f64| {
            ev(
                at,
                EventKind::LlcOccupancySample {
                    socket: 0,
                    occupied_bytes: occupied,
                    llc_bytes: 1_000_000.0,
                    inserted_bytes: inserted,
                    evicted_bytes: evicted,
                    decayed_bytes: decayed,
                },
            )
        };
        // Fill, evict, decay — balanced and under capacity: clean.
        let c = check(&[
            sample(10, 400_000.0, 400_000.0, 0.0, 0.0),
            sample(20, 900_000.0, 1_100_000.0, 150_000.0, 50_000.0),
        ]);
        assert!(c.report().ok(), "{:?}", c.first());
        // Occupancy over the socket's LLC size.
        let c = check(&[sample(10, 1_200_000.0, 1_200_000.0, 0.0, 0.0)]);
        assert_eq!(c.first().unwrap().kind, ViolationKind::LlcOccupancyOverflow);
        // Balance broken: occupied disagrees with the counters.
        let c = check(&[sample(10, 300_000.0, 400_000.0, 0.0, 0.0)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::LlcConservationMismatch
        );
        // Cumulative counters moving backwards.
        let c = check(&[
            sample(10, 200_000.0, 300_000.0, 100_000.0, 0.0),
            sample(20, 250_000.0, 250_000.0, 0.0, 0.0),
        ]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::LlcConservationMismatch
        );
    }

    #[test]
    fn cache_aware_pick_must_be_justified() {
        let pick = |pressure: f64, best: f64| {
            ev(
                10,
                EventKind::CacheAwarePick {
                    task: 3,
                    chosen: 1,
                    domain: 0,
                    pressure,
                    best_pressure: best,
                },
            )
        };
        // Inside the preference margin: clean.
        assert!(check(&[pick(0.2, 0.1)]).report().ok());
        assert!(check(&[pick(0.0, 0.0)]).report().ok());
        // Picked a domain far above the best published estimate.
        let c = check(&[pick(0.9, 0.1)]);
        assert_eq!(
            c.first().unwrap().kind,
            ViolationKind::CacheAwarePickUnjustified
        );
    }

    #[test]
    fn fold_sums_counters_and_keeps_the_first_violation_in_fold_order() {
        let clean = check(&[ev(1, EventKind::VcpuWake { vcpu: 0 })]).report();
        let broken = |at: u64| {
            check(&[ev(
                at,
                EventKind::IvhAbandonedByWatchdog {
                    task: 5,
                    src: 0,
                    target: 3,
                    waited_ns: 40,
                },
            )])
            .report()
        };
        let folded = CheckReport::fold([clean.clone(), broken(7), broken(99)]);
        assert_eq!(folded.events, 3);
        assert_eq!(folded.violations, 2);
        // Fold order decides `first`, not timestamps or completion order.
        assert_eq!(folded.first.as_ref().unwrap().event.at.ns(), 7);
        let refolded = CheckReport::fold([broken(99), clean, broken(7)]);
        assert_eq!(refolded.first.as_ref().unwrap().event.at.ns(), 99);
    }
}
