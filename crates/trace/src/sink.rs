//! The emit-site dispatch point.
//!
//! Every instrumented component (guest kernel, host machine, vSched hooks)
//! holds a [`TraceSink`]. The default is [`TraceSink::Off`]: emitting is a
//! single enum discriminant test on a stack-built `Copy` event — no
//! allocation, no side effects, bit-identical simulation results. When on,
//! the sink forwards into a [`Collector`] shared (single-threaded `Rc`)
//! between the host machine and every guest, each scoped with its VM index.

use crate::check::InvariantChecker;
use crate::event::{EventKind, TraceEvent};
use crate::latency::WakeLatency;
use crate::ring::RingBuffer;
use crate::schedstat::Schedstat;
use simcore::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Aggregation target behind an enabled sink.
#[derive(Debug, Default)]
pub struct Collector {
    /// Bounded raw event log (for exporters). `None` keeps only aggregates.
    pub ring: Option<RingBuffer>,
    /// Always-on cheap per-vCPU aggregates (schedstat export).
    pub stats: Schedstat,
    /// Always-on per-wakeup runqueue-delay breakdown (latency export).
    pub wake_latency: WakeLatency,
    /// Optional online conservation-law checker.
    pub checker: Option<InvariantChecker>,
}

impl Collector {
    /// A collector retaining up to `ring_cap` raw events.
    pub fn with_ring(ring_cap: usize) -> Self {
        Self {
            ring: Some(RingBuffer::new(ring_cap)),
            ..Self::default()
        }
    }

    /// Adds an invariant checker to this collector.
    pub fn with_checker(mut self) -> Self {
        self.checker = Some(InvariantChecker::new());
        self
    }

    /// Routes one event to every attached consumer.
    pub fn record(&mut self, ev: TraceEvent) {
        self.stats.observe(&ev);
        self.wake_latency.observe(&ev);
        if let Some(c) = &mut self.checker {
            c.observe(&ev);
        }
        if let Some(r) = &mut self.ring {
            r.push(ev);
        }
    }
}

/// A handle to a shared collector.
pub type SharedCollector = Rc<RefCell<Collector>>;

/// Where a component sends its scheduler events.
#[derive(Debug, Clone, Default)]
pub enum TraceSink {
    /// Tracing disabled: `emit` is a branch and nothing else.
    #[default]
    Off,
    /// Tracing enabled; events are stamped with this component's VM scope.
    On {
        /// VM index stamped on events emitted through [`TraceSink::emit`].
        vm: u16,
        /// The shared aggregation target.
        shared: SharedCollector,
    },
}

impl TraceSink {
    /// Wraps a collector for sharing and returns a sink scoped to VM 0 plus
    /// the handle for exporting afterwards.
    pub fn shared(collector: Collector) -> (TraceSink, SharedCollector) {
        let shared = Rc::new(RefCell::new(collector));
        (
            TraceSink::On {
                vm: 0,
                shared: Rc::clone(&shared),
            },
            shared,
        )
    }

    /// A sink for VM `vm` feeding an existing collector.
    pub fn for_vm(shared: &SharedCollector, vm: u16) -> TraceSink {
        TraceSink::On {
            vm,
            shared: Rc::clone(shared),
        }
    }

    /// This sink re-scoped to another VM (same collector).
    pub fn scoped(&self, vm: u16) -> TraceSink {
        match self {
            TraceSink::Off => TraceSink::Off,
            TraceSink::On { shared, .. } => TraceSink::for_vm(shared, vm),
        }
    }

    /// Whether events are being collected.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, TraceSink::On { .. })
    }

    /// Emits an event stamped with this sink's VM scope.
    #[inline]
    pub fn emit(&self, at: SimTime, kind: EventKind) {
        if let TraceSink::On { vm, shared } = self {
            shared.borrow_mut().record(TraceEvent { at, vm: *vm, kind });
        }
    }

    /// Emits an event for an explicit VM (host-side emit points that span
    /// all VMs).
    #[inline]
    pub fn emit_vm(&self, at: SimTime, vm: u16, kind: EventKind) {
        if let TraceSink::On { shared, .. } = self {
            shared.borrow_mut().record(TraceEvent { at, vm, kind });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_sink_collects_nothing() {
        let sink = TraceSink::default();
        assert!(!sink.is_on());
        sink.emit(SimTime(1), EventKind::VcpuWake { vcpu: 0 });
        // Nothing observable: Off holds no state at all.
    }

    #[test]
    fn scoped_sinks_stamp_their_vm() {
        let (sink, shared) = TraceSink::shared(Collector::with_ring(8));
        sink.emit(SimTime(1), EventKind::VcpuWake { vcpu: 0 });
        sink.scoped(3)
            .emit(SimTime(2), EventKind::VcpuWake { vcpu: 1 });
        sink.emit_vm(SimTime(3), 7, EventKind::VcpuHalt { vcpu: 2 });
        let c = shared.borrow();
        let vms: Vec<u16> = c.ring.as_ref().unwrap().iter().map(|e| e.vm).collect();
        assert_eq!(vms, vec![0, 3, 7]);
    }
}
