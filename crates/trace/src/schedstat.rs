//! Linux-style plain-text schedstat export.
//!
//! Aggregates per-vCPU counters from the event stream — independent of the
//! bounded ring, so the numbers cover the whole run even when raw events
//! were dropped — and renders them as one line per vCPU, mirroring the
//! shape of `/proc/schedstat`.

use crate::event::{EventKind, TraceEvent};
use simcore::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-vCPU running totals.
#[derive(Debug, Default, Clone)]
struct VcpuStat {
    run_ns: u64,
    steal_ns: u64,
    switches: u64,
    wakes: u64,
    migrations_in: u64,
    ipis: u64,
    running_since: Option<SimTime>,
}

/// The schedstat accumulator: cheap counters, always on in a collector.
#[derive(Debug, Default)]
pub struct Schedstat {
    per_vcpu: BTreeMap<(u16, u16), VcpuStat>,
    last_event: SimTime,
}

impl Schedstat {
    fn stat(&mut self, vm: u16, vcpu: u16) -> &mut VcpuStat {
        self.per_vcpu.entry((vm, vcpu)).or_default()
    }

    /// Folds one event into the totals.
    pub fn observe(&mut self, ev: &TraceEvent) {
        if ev.at > self.last_event {
            self.last_event = ev.at;
        }
        match ev.kind {
            EventKind::VcpuResume { vcpu, .. } => {
                self.stat(ev.vm, vcpu).running_since = Some(ev.at);
            }
            EventKind::VcpuPreempt { vcpu, .. } => {
                let at = ev.at;
                let s = self.stat(ev.vm, vcpu);
                if let Some(since) = s.running_since.take() {
                    s.run_ns += at.since(since);
                }
            }
            EventKind::StealAccrue { vcpu, delta_ns } => {
                self.stat(ev.vm, vcpu).steal_ns += delta_ns;
            }
            EventKind::ContextSwitch {
                vcpu,
                next: Some(_),
                ..
            } => {
                self.stat(ev.vm, vcpu).switches += 1;
            }
            EventKind::TaskWake { vcpu, .. } => {
                self.stat(ev.vm, vcpu).wakes += 1;
            }
            EventKind::TaskMigrate { to, .. } => {
                self.stat(ev.vm, to).migrations_in += 1;
            }
            EventKind::ReschedIpi { to, .. } => {
                self.stat(ev.vm, to).ipis += 1;
            }
            _ => {}
        }
    }

    /// Renders the totals at `now` (idle time is derived as
    /// `wall − run − steal`).
    pub fn render(&self, now: SimTime) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "version 1 (vsched-trace)");
        let _ = writeln!(out, "timestamp_ns {}", now.ns());
        let _ = writeln!(
            out,
            "# cpu<vm>/<vcpu> run_ns steal_ns idle_ns switches wakes migrations_in resched_ipis"
        );
        for (&(vm, vcpu), s) in &self.per_vcpu {
            // A vCPU still on-core at render time: charge the open segment.
            let run = s.run_ns + s.running_since.map(|since| now.since(since)).unwrap_or(0);
            let idle = now.ns().saturating_sub(run + s.steal_ns);
            let _ = writeln!(
                out,
                "cpu{vm}/{vcpu} {run} {} {idle} {} {} {} {}",
                s.steal_ns, s.switches, s.wakes, s.migrations_in, s.ipis
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PreemptReason;

    fn ev(at: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime(at),
            vm: 0,
            kind,
        }
    }

    #[test]
    fn run_steal_idle_partition_wall_time() {
        let mut s = Schedstat::default();
        s.observe(&ev(0, EventKind::VcpuResume { vcpu: 0, thread: 0 }));
        s.observe(&ev(
            600,
            EventKind::VcpuPreempt {
                vcpu: 0,
                reason: PreemptReason::Preempt,
            },
        ));
        s.observe(&ev(
            900,
            EventKind::StealAccrue {
                vcpu: 0,
                delta_ns: 300,
            },
        ));
        let text = s.render(SimTime(1000));
        let line = text
            .lines()
            .find(|l| l.starts_with("cpu0/0"))
            .expect("cpu line");
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(fields[1], "600", "run: {line}");
        assert_eq!(fields[2], "300", "steal: {line}");
        assert_eq!(fields[3], "100", "idle: {line}");
    }

    #[test]
    fn counters_tally() {
        let mut s = Schedstat::default();
        s.observe(&ev(
            1,
            EventKind::TaskWake {
                task: 5,
                vcpu: 2,
                waker: None,
            },
        ));
        s.observe(&ev(
            2,
            EventKind::ContextSwitch {
                vcpu: 2,
                prev: None,
                next: Some(5),
                reason: crate::event::SwitchReason::Pick,
                min_vruntime: 0,
            },
        ));
        s.observe(&ev(3, EventKind::ReschedIpi { from: None, to: 2 }));
        let text = s.render(SimTime(10));
        assert!(text.contains("cpu0/2 0 0 10 1 1 0 1"), "{text}");
    }
}
