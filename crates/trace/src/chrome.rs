//! Chrome trace-event JSON exporter (Perfetto-loadable).
//!
//! Maps the event log onto the trace-event format: one *process* per VM,
//! two *threads* per vCPU — the host track (`vCPU n (host)`) carrying
//! "running" slices between `VcpuResume`/`VcpuPreempt`, and the guest track
//! (`vCPU n (guest)`) carrying per-task slices between context switches —
//! plus instants for wakes/IPIs/ivh, counter tracks for prober samples, and
//! flow events chaining each task's migrations. Open `chrome://tracing` or
//! <https://ui.perfetto.dev> and load the file.
//!
//! The emitter writes JSON by hand (the workspace carries no serialization
//! dependency); [`validate_json`] is a minimal syntax checker used by tests
//! to keep it honest.

use crate::event::{EventKind, TraceEvent};
use crate::ring::RingBuffer;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Offset separating guest-task tracks from host tracks within a process.
const GUEST_TID_BASE: u32 = 10_000;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Self {
            out: String::from("{\"traceEvents\":["),
            first: true,
        }
    }

    /// Appends one pre-rendered event object body (without braces).
    fn event(&mut self, body: String) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(&body);
        self.out.push('}');
    }

    fn finish(mut self, dropped: u64) -> String {
        let _ = write!(
            self.out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":\"{dropped}\"}}}}"
        );
        self.out
    }
}

/// Renders the retained events as Chrome trace-event JSON.
pub fn chrome_trace(ring: &RingBuffer) -> String {
    let mut w = Writer::new();

    // Metadata: name every process (VM) and thread (vCPU track) that appears.
    let mut vms: BTreeSet<u16> = BTreeSet::new();
    let mut tracks: BTreeSet<(u16, u16)> = BTreeSet::new();
    for ev in ring.iter() {
        vms.insert(ev.vm);
        if let Some(v) = vcpu_of(ev) {
            tracks.insert((ev.vm, v));
        }
    }
    for vm in &vms {
        w.event(format!(
            "\"ph\":\"M\",\"pid\":{vm},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"VM {vm}\"}}"
        ));
    }
    for &(vm, v) in &tracks {
        w.event(format!(
            "\"ph\":\"M\",\"pid\":{vm},\"tid\":{v},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"vCPU {v} (host)\"}}"
        ));
        w.event(format!(
            "\"ph\":\"M\",\"pid\":{vm},\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"vCPU {v} (guest)\"}}",
            GUEST_TID_BASE + v as u32
        ));
    }

    // Open-slice bookkeeping so B/E stay balanced even when the ring starts
    // mid-slice (dropped prefix) or the run ends mid-slice.
    let mut host_open: BTreeMap<(u16, u16), ()> = BTreeMap::new();
    let mut guest_open: BTreeMap<(u16, u16), u32> = BTreeMap::new();
    let mut last_ts = 0u64;

    for ev in ring.iter() {
        let t = us(ev.at.ns());
        last_ts = last_ts.max(ev.at.ns());
        let vm = ev.vm;
        match ev.kind {
            EventKind::VcpuResume { vcpu, thread } => {
                w.event(format!(
                    "\"ph\":\"B\",\"ts\":{t},\"pid\":{vm},\"tid\":{vcpu},\
                     \"cat\":\"host\",\"name\":\"running\",\
                     \"args\":{{\"thread\":{thread}}}"
                ));
                host_open.insert((vm, vcpu), ());
            }
            EventKind::VcpuPreempt { vcpu, reason } => {
                if host_open.remove(&(vm, vcpu)).is_some() {
                    w.event(format!(
                        "\"ph\":\"E\",\"ts\":{t},\"pid\":{vm},\"tid\":{vcpu},\
                         \"cat\":\"host\",\"args\":{{\"reason\":\"{reason:?}\"}}"
                    ));
                }
            }
            EventKind::VcpuWake { vcpu } | EventKind::VcpuHalt { vcpu } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"t\",\"ts\":{t},\"pid\":{vm},\"tid\":{vcpu},\
                     \"cat\":\"host\",\"name\":\"{}\"",
                    esc(ev.kind.name())
                ));
            }
            EventKind::ContextSwitch {
                vcpu, prev, next, ..
            } => {
                let tid = GUEST_TID_BASE + vcpu as u32;
                if prev.is_some() && guest_open.remove(&(vm, vcpu)).is_some() {
                    w.event(format!(
                        "\"ph\":\"E\",\"ts\":{t},\"pid\":{vm},\"tid\":{tid},\"cat\":\"guest\""
                    ));
                }
                if let Some(task) = next {
                    w.event(format!(
                        "\"ph\":\"B\",\"ts\":{t},\"pid\":{vm},\"tid\":{tid},\
                         \"cat\":\"guest\",\"name\":\"T{task}\""
                    ));
                    guest_open.insert((vm, vcpu), task);
                }
            }
            EventKind::TaskWake { task, vcpu, waker } => {
                let waker = waker.map_or("null".into(), |x| x.to_string());
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"t\",\"ts\":{t},\"pid\":{vm},\
                     \"tid\":{},\"cat\":\"guest\",\"name\":\"wake T{task}\",\
                     \"args\":{{\"waker\":{waker}}}",
                    GUEST_TID_BASE + vcpu as u32
                ));
            }
            EventKind::TaskMigrate {
                task,
                from,
                to,
                kind,
            } => {
                let to_tid = GUEST_TID_BASE + to as u32;
                let from_tid = GUEST_TID_BASE + from as u32;
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"t\",\"ts\":{t},\"pid\":{vm},\"tid\":{to_tid},\
                     \"cat\":\"guest\",\"name\":\"migrate T{task} ({kind:?})\",\
                     \"args\":{{\"from\":{from},\"to\":{to}}}"
                ));
                // Flow pair: chains this task's migrations into one arrow
                // sequence (flow id = task id).
                w.event(format!(
                    "\"ph\":\"s\",\"ts\":{t},\"pid\":{vm},\"tid\":{from_tid},\
                     \"cat\":\"migration\",\"name\":\"T{task} flow\",\"id\":{task}"
                ));
                w.event(format!(
                    "\"ph\":\"f\",\"bp\":\"e\",\"ts\":{t},\"pid\":{vm},\"tid\":{to_tid},\
                     \"cat\":\"migration\",\"name\":\"T{task} flow\",\"id\":{task}"
                ));
            }
            EventKind::ReschedIpi { from, to } => {
                let from = from.map_or("null".into(), |x| x.to_string());
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"t\",\"ts\":{t},\"pid\":{vm},\"tid\":{to},\
                     \"cat\":\"host\",\"name\":\"resched_ipi\",\"args\":{{\"from\":{from}}}"
                ));
            }
            EventKind::ProbeSample { vcpu, probe, value } => {
                w.event(format!(
                    "\"ph\":\"C\",\"ts\":{t},\"pid\":{vm},\
                     \"name\":\"{probe:?} v{vcpu}\",\"args\":{{\"value\":{}}}",
                    json_f64(value)
                ));
            }
            EventKind::BvsSelect { task, chosen } => {
                let chosen = chosen.map_or("null".into(), |x| x.to_string());
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"p\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"vsched\",\"name\":\"bvs T{task}\",\
                     \"args\":{{\"chosen\":{chosen}}}"
                ));
            }
            EventKind::IvhPull {
                task,
                src,
                target,
                phase,
            } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"t\",\"ts\":{t},\"pid\":{vm},\"tid\":{target},\
                     \"cat\":\"vsched\",\"name\":\"ivh {phase:?} T{task}\",\
                     \"args\":{{\"src\":{src}}}"
                ));
            }
            EventKind::FaultInjected { vcpu, class } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"g\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"chaos\",\"name\":\"fault {class:?}\",\
                     \"args\":{{\"vcpu\":{vcpu}}}"
                ));
            }
            EventKind::DegradedEnter { reason } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"g\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"vsched\",\"name\":\"degraded enter\",\
                     \"args\":{{\"reason\":\"{reason:?}\"}}"
                ));
            }
            EventKind::DegradedExit { after_ns } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"g\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"vsched\",\"name\":\"degraded exit\",\
                     \"args\":{{\"after_ns\":{after_ns}}}"
                ));
            }
            EventKind::ProbeRetry { probe, attempt } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"p\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"vsched\",\"name\":\"reprobe {probe:?}\",\
                     \"args\":{{\"attempt\":{attempt}}}"
                ));
            }
            EventKind::IvhAbandonedByWatchdog {
                task, src, target, ..
            } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"t\",\"ts\":{t},\"pid\":{vm},\"tid\":{target},\
                     \"cat\":\"vsched\",\"name\":\"ivh watchdog T{task}\",\
                     \"args\":{{\"src\":{src}}}"
                ));
            }
            EventKind::VmAdmitted { uid, vcpus, prio } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"g\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"fleet\",\"name\":\"admit VM{uid}\",\
                     \"args\":{{\"vcpus\":{vcpus},\"prio\":\"{}\"}}",
                    prio.name()
                ));
            }
            EventKind::VmPlaced {
                uid,
                host,
                occupied,
                cap,
                ..
            } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"g\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"fleet\",\"name\":\"place VM{uid} on H{host}\",\
                     \"args\":{{\"occupied\":{occupied},\"cap\":{cap}}}"
                ));
            }
            EventKind::VmDeparted { uid, host, .. } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"g\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"fleet\",\"name\":\"depart VM{uid} from H{host}\""
                ));
            }
            EventKind::HostFailed {
                host,
                kind,
                residents,
            } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"g\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"fleet\",\"name\":\"H{host} {kind:?}\",\
                     \"args\":{{\"residents\":{residents}}}"
                ));
            }
            EventKind::HostRecovered { host, down_ns } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"g\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"fleet\",\"name\":\"H{host} recovered\",\
                     \"args\":{{\"down_ns\":{down_ns}}}"
                ));
            }
            EventKind::VmMigrated { uid, from, to, .. } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"g\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"fleet\",\"name\":\"migrate VM{uid} H{from}->H{to}\""
                ));
            }
            EventKind::DomainAssigned { class } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"g\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"domain\",\"name\":\"assign {}\"",
                    class.name()
                ));
            }
            EventKind::DomainSwitch {
                index,
                class,
                slice_ns,
                ..
            } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"g\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"domain\",\"name\":\"slice {index} ({})\",\
                     \"args\":{{\"slice_ns\":{slice_ns}}}",
                    class.name()
                ));
            }
            EventKind::ProbeRejected { vcpu, probe, .. } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"p\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"vsched\",\"name\":\"reject {probe:?} v{vcpu}\""
                ));
            }
            EventKind::CacheProbe {
                vcpu,
                domain,
                pressure,
                ..
            } => {
                w.event(format!(
                    "\"ph\":\"C\",\"ts\":{t},\"pid\":{vm},\
                     \"name\":\"vcache d{domain} v{vcpu}\",\"args\":{{\"pressure\":{}}}",
                    json_f64(pressure)
                ));
            }
            EventKind::LlcOccupancySample {
                socket,
                occupied_bytes,
                ..
            } => {
                w.event(format!(
                    "\"ph\":\"C\",\"ts\":{t},\"pid\":{vm},\
                     \"name\":\"llc s{socket}\",\"args\":{{\"occupied_bytes\":{}}}",
                    json_f64(occupied_bytes)
                ));
            }
            EventKind::CacheAwarePick {
                task,
                chosen,
                domain,
                pressure,
                ..
            } => {
                w.event(format!(
                    "\"ph\":\"i\",\"s\":\"p\",\"ts\":{t},\"pid\":{vm},\
                     \"cat\":\"vsched\",\"name\":\"cache-aware T{task} -> v{chosen}\",\
                     \"args\":{{\"domain\":{domain},\"pressure\":{}}}",
                    json_f64(pressure)
                ));
            }
            // High-volume accounting deltas stay out of the visual trace;
            // they feed the schedstat totals and the checker instead.
            EventKind::StealAccrue { .. }
            | EventKind::TaskCharge { .. }
            | EventKind::BandwidthSet { .. }
            | EventKind::StealAccounted { .. }
            | EventKind::PeltDecay { .. } => {}
        }
    }

    // Close any still-open slice so every B has a matching E.
    let t = us(last_ts);
    for ((vm, vcpu), _) in host_open {
        w.event(format!(
            "\"ph\":\"E\",\"ts\":{t},\"pid\":{vm},\"tid\":{vcpu},\"cat\":\"host\""
        ));
    }
    for ((vm, vcpu), _) in guest_open {
        w.event(format!(
            "\"ph\":\"E\",\"ts\":{t},\"pid\":{vm},\"tid\":{},\"cat\":\"guest\"",
            GUEST_TID_BASE + vcpu as u32
        ));
    }

    w.finish(ring.dropped())
}

/// JSON has no NaN/Infinity; clamp weird samples to null.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn vcpu_of(ev: &TraceEvent) -> Option<u16> {
    match ev.kind {
        EventKind::TaskWake { vcpu, .. }
        | EventKind::ContextSwitch { vcpu, .. }
        | EventKind::VcpuResume { vcpu, .. }
        | EventKind::VcpuPreempt { vcpu, .. }
        | EventKind::VcpuWake { vcpu }
        | EventKind::VcpuHalt { vcpu }
        | EventKind::StealAccrue { vcpu, .. }
        | EventKind::ProbeSample { vcpu, .. }
        | EventKind::TaskCharge { vcpu, .. } => Some(vcpu),
        EventKind::ReschedIpi { to, .. } => Some(to),
        EventKind::TaskMigrate { to, .. } => Some(to),
        EventKind::IvhPull { target, .. } => Some(target),
        EventKind::IvhAbandonedByWatchdog { target, .. } => Some(target),
        EventKind::FaultInjected { vcpu, .. }
        | EventKind::BandwidthSet { vcpu, .. }
        | EventKind::ProbeRejected { vcpu, .. }
        | EventKind::CacheProbe { vcpu, .. } => Some(vcpu),
        EventKind::CacheAwarePick { chosen, .. } => Some(chosen),
        EventKind::BvsSelect { .. }
        | EventKind::LlcOccupancySample { .. }
        | EventKind::ProbeRetry { .. }
        | EventKind::DegradedEnter { .. }
        | EventKind::DegradedExit { .. }
        | EventKind::PeltDecay { .. }
        | EventKind::VmAdmitted { .. }
        | EventKind::VmPlaced { .. }
        | EventKind::VmDeparted { .. }
        | EventKind::HostFailed { .. }
        | EventKind::HostRecovered { .. }
        | EventKind::VmMigrated { .. }
        | EventKind::DomainAssigned { .. }
        | EventKind::DomainSwitch { .. }
        | EventKind::StealAccounted { .. } => None,
    }
}

/// Minimal JSON syntax validator (objects, arrays, strings, numbers,
/// literals). Returns the byte offset and message of the first error.
/// Exists so tests can verify the hand-written exporter without pulling a
/// JSON dependency into the workspace.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }
    fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, i);
                    string(b, i)?;
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("expected ':' at {i}"));
                    }
                    *i += 1;
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or '}}' at {i}")),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or ']' at {i}")),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, "true"),
            Some(b'f') => literal(b, i, "false"),
            Some(b'n') => literal(b, i, "null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                *i += 1;
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    *i += 1;
                }
                Ok(())
            }
            other => Err(format!("unexpected {other:?} at {i}")),
        }
    }
    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected string at {i}"));
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => *i += 2,
                _ => *i += 1,
            }
        }
        Err("unterminated string".into())
    }
    fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
        if b[*i..].starts_with(lit.as_bytes()) {
            *i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at {i}"))
        }
    }
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(format!("trailing content at {i}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MigrateKind, PreemptReason, SwitchReason};
    use simcore::SimTime;

    fn sample_ring() -> RingBuffer {
        let mut r = RingBuffer::new(64);
        let mut push = |at: u64, vm: u16, kind: EventKind| {
            r.push(TraceEvent {
                at: SimTime(at),
                vm,
                kind,
            })
        };
        push(0, 0, EventKind::VcpuWake { vcpu: 0 });
        push(100, 0, EventKind::VcpuResume { vcpu: 0, thread: 1 });
        push(
            150,
            0,
            EventKind::ContextSwitch {
                vcpu: 0,
                prev: None,
                next: Some(3),
                reason: SwitchReason::Pick,
                min_vruntime: 10,
            },
        );
        push(
            200,
            0,
            EventKind::TaskWake {
                task: 4,
                vcpu: 1,
                waker: Some(3),
            },
        );
        push(
            300,
            0,
            EventKind::TaskMigrate {
                task: 4,
                from: 1,
                to: 0,
                kind: MigrateKind::Balance,
            },
        );
        push(
            400,
            0,
            EventKind::VcpuPreempt {
                vcpu: 0,
                reason: PreemptReason::Preempt,
            },
        );
        push(
            500,
            0,
            EventKind::ProbeSample {
                vcpu: 0,
                probe: crate::event::ProbeKind::Vcap,
                value: 512.25,
            },
        );
        r
    }

    #[test]
    fn exporter_produces_valid_json() {
        let json = chrome_trace(&sample_ring());
        validate_json(&json).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{json}"));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("migrate T4"));
    }

    #[test]
    fn slices_stay_balanced() {
        let json = chrome_trace(&sample_ring());
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, e, "unbalanced B/E:\n{json}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("[1,2").is_err());
        assert!(validate_json("{\"a\" 1}").is_err());
        assert!(validate_json("{} extra").is_err());
        assert!(validate_json("{\"a\":[1,2,{\"b\":null}]}").is_ok());
    }
}
