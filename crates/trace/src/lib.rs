//! Deterministic scheduler tracing for the vSched reproduction.
//!
//! The simulator's figures all hinge on *scheduling events* — preemptions,
//! steal accrual, migrations, ivh pulls — but aggregate counters can't show
//! why a run behaved the way it did. This crate is the observability layer:
//!
//! * [`TraceEvent`]/[`EventKind`] — typed, `SimTime`-stamped events covering
//!   both levels of the two-level scheduling stack (host vCPU scheduling and
//!   guest task scheduling).
//! * [`TraceSink`] — the emit-site dispatch enum. [`TraceSink::Off`] (the
//!   default) makes every emit a branch over a stack value: no allocation,
//!   no behavioural change, bit-identical results.
//! * [`RingBuffer`] — bounded raw event retention with drop counting.
//! * [`chrome::chrome_trace`] — Chrome trace-event JSON (Perfetto-loadable).
//! * [`schedstat::Schedstat`] — Linux-style plain-text per-vCPU totals.
//! * [`InvariantChecker`] — a streaming conservation-law checker; the tier-1
//!   figure tests attach it and assert zero violations.
//!
//! Wiring lives in the instrumented crates: `guestos` (switches, wakes,
//! migrations, IPIs, charges), `hostsim` (resume/preempt/steal/throttle),
//! and `vsched` (bvs decisions, ivh pull lifecycle, prober samples).

pub mod check;
pub mod chrome;
pub mod event;
pub mod latency;
pub mod ring;
pub mod schedstat;
pub mod sink;

pub use check::{CheckReport, InvariantChecker, Violation, ViolationKind};
pub use chrome::{chrome_trace, validate_json};
pub use event::{
    DegradeReason, EventKind, FaultClass, HostFailKind, IvhPhase, MigrateKind, PreemptReason,
    PriorityClass, ProbeKind, SwitchReason, TraceEvent, PRIORITY_CLASSES,
};
pub use latency::WakeLatency;
pub use ring::RingBuffer;
pub use schedstat::Schedstat;
pub use sink::{Collector, SharedCollector, TraceSink};
