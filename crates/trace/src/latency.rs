//! Per-wakeup runqueue-delay breakdown.
//!
//! Pairs every `TaskWake` with the `ContextSwitch` that first runs the
//! woken task and records the gap — the guest-visible runqueue delay — in
//! a per-vCPU log-bucketed histogram. This is the latency-breakdown
//! exporter the ROADMAP names: where `schedstat` says *how much* time a
//! vCPU spent where, this says *how long each individual wakeup waited*,
//! which is the quantity the paper's tail-latency figures ultimately
//! measure.
//!
//! A task migrated between wake and first run is charged to the vCPU that
//! finally ran it (the delay is the task's experience, not a vCPU's).
//! Re-wakes of a task already pending overwrite the earlier timestamp:
//! the earlier wake never materialized as a run, so it has no delay to
//! report.

use crate::event::{EventKind, TraceEvent};
use metrics::Histogram;
use simcore::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Streaming wake→first-run delay accumulator.
#[derive(Default)]
pub struct WakeLatency {
    /// Wakeups awaiting their first run, keyed by `(vm, task)`.
    pending: BTreeMap<(u16, u32), SimTime>,
    /// Completed delays per `(vm, vcpu)`.
    per_vcpu: BTreeMap<(u16, u16), Histogram>,
}

impl std::fmt::Debug for WakeLatency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakeLatency")
            .field("pending", &self.pending.len())
            .field("pairs", &self.pairs())
            .finish()
    }
}

impl WakeLatency {
    /// Folds one event into the breakdown.
    pub fn observe(&mut self, ev: &TraceEvent) {
        match ev.kind {
            EventKind::TaskWake { task, .. } => {
                self.pending.insert((ev.vm, task), ev.at);
            }
            EventKind::ContextSwitch {
                vcpu,
                next: Some(task),
                ..
            } => {
                if let Some(woke) = self.pending.remove(&(ev.vm, task)) {
                    self.per_vcpu
                        .entry((ev.vm, vcpu))
                        .or_default()
                        .record(ev.at.since(woke));
                }
            }
            _ => {}
        }
    }

    /// Number of completed wake→run pairs across all vCPUs.
    pub fn pairs(&self) -> u64 {
        self.per_vcpu.values().map(Histogram::count).sum()
    }

    /// The delay histogram of one vCPU, if it completed any wakeups.
    pub fn vcpu(&self, vm: u16, vcpu: u16) -> Option<&Histogram> {
        self.per_vcpu.get(&(vm, vcpu))
    }

    /// Renders one line per vCPU alongside the schedstat dump: pair count,
    /// mean, and the p50/p95/p99 tail of the runqueue delay in ns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# wake-to-run runqueue delay (ns)");
        let _ = writeln!(out, "# cpu<vm>/<vcpu> pairs mean p50 p95 p99 max");
        for (&(vm, vcpu), h) in &self.per_vcpu {
            let _ = writeln!(
                out,
                "cpu{vm}/{vcpu} {} {:.0} {} {} {} {}",
                h.count(),
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max(),
            );
        }
        if self.per_vcpu.is_empty() {
            let _ = writeln!(out, "# (no completed wakeups)");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime(at),
            vm: 0,
            kind,
        }
    }

    fn wake(at: u64, task: u32, vcpu: u16) -> TraceEvent {
        ev(
            at,
            EventKind::TaskWake {
                task,
                vcpu,
                waker: None,
            },
        )
    }

    fn switch_in(at: u64, task: u32, vcpu: u16) -> TraceEvent {
        ev(
            at,
            EventKind::ContextSwitch {
                vcpu,
                prev: None,
                next: Some(task),
                reason: crate::event::SwitchReason::Pick,
                min_vruntime: 0,
            },
        )
    }

    #[test]
    fn pairs_wake_with_first_run() {
        let mut w = WakeLatency::default();
        w.observe(&wake(100, 7, 0));
        w.observe(&switch_in(350, 7, 0));
        assert_eq!(w.pairs(), 1);
        let h = w.vcpu(0, 0).unwrap();
        assert_eq!(h.max(), 250);
        // A later switch-in of the same task without a wake is a preemption
        // resume, not a wakeup: no new pair.
        w.observe(&switch_in(900, 7, 0));
        assert_eq!(w.pairs(), 1);
    }

    #[test]
    fn migration_charges_the_running_vcpu() {
        let mut w = WakeLatency::default();
        w.observe(&wake(0, 3, 1));
        // First run lands on vCPU 2 (wake-time placement moved it).
        w.observe(&switch_in(500, 3, 2));
        assert!(w.vcpu(0, 1).is_none());
        assert_eq!(w.vcpu(0, 2).unwrap().max(), 500);
    }

    #[test]
    fn rewake_overwrites_pending() {
        let mut w = WakeLatency::default();
        w.observe(&wake(0, 5, 0));
        w.observe(&wake(400, 5, 0));
        w.observe(&switch_in(500, 5, 0));
        assert_eq!(w.vcpu(0, 0).unwrap().max(), 100);
    }

    #[test]
    fn render_lists_per_vcpu_lines() {
        let mut w = WakeLatency::default();
        w.observe(&wake(0, 1, 0));
        w.observe(&switch_in(128, 1, 0));
        let text = w.render();
        assert!(text.contains("cpu0/0 1"), "{text}");
        let empty = WakeLatency::default().render();
        assert!(empty.contains("no completed wakeups"), "{empty}");
    }
}
