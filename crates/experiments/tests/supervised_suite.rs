//! Acceptance gates for the supervised suite: canary isolation, checkpoint
//! resume byte-identity, and the zero-match filter error.

use experiments::runner::{run_suite, SuiteOptions};
use experiments::supervise::FailureCause;
use experiments::Scale;
use std::path::PathBuf;

fn base(filter: &str) -> SuiteOptions {
    SuiteOptions {
        jobs: 2,
        filter: Some(filter.into()),
        scale: Scale::Smoke,
        ..SuiteOptions::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("vsched_supervised_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn canary_failures_are_isolated_and_healthy_output_is_untouched() {
    let clean = run_suite(&base("fig03")).expect("filter matches");
    assert!(clean.failures.is_empty());

    let mut opts = base("fig03");
    opts.canary = true;
    // One retry keeps the test fast while still proving retry exhaustion.
    opts.supervise.retries = 1;
    opts.supervise.backoff_base = std::time::Duration::from_millis(1);
    let res = run_suite(&opts).expect("filter matches");

    // Both injected failures surface, typed, naming figure and cell.
    assert_eq!(res.failures.failures.len(), 2);
    let panic = &res.failures.failures[0];
    assert_eq!(
        (panic.figure.as_str(), panic.label.as_str()),
        ("canary", "panic")
    );
    assert_eq!(panic.attempts, 2, "retries exhausted with the same seed");
    assert!(
        matches!(&panic.cause, FailureCause::Panic(m) if m.contains("injected panic")),
        "{:?}",
        panic.cause
    );
    let deadline = &res.failures.failures[1];
    assert_eq!(deadline.label, "deadline");
    assert!(matches!(
        deadline.cause,
        FailureCause::Deadline { budget_ms: 10, .. }
    ));

    // The canary job failed; every real job's bytes are exactly the clean
    // run's.
    let canary = res.reports.iter().find(|r| r.name == "canary").unwrap();
    assert!(!canary.ok);
    assert!(canary.output.is_empty());
    let healthy: Vec<_> = res
        .reports
        .iter()
        .filter(|r| r.name != "canary")
        .map(|r| (r.name, r.output.clone()))
        .collect();
    let clean_out: Vec<_> = clean
        .reports
        .iter()
        .map(|r| (r.name, r.output.clone()))
        .collect();
    assert_eq!(healthy, clean_out, "canary must not perturb healthy jobs");

    // The machine-readable report names both cells too.
    let json = res.failures.to_json();
    assert!(json.contains("\"failed_cells\":2"));
    assert!(json.contains("injected panic") && json.contains("deadline"));
}

#[test]
fn resume_replays_checkpointed_jobs_byte_identically() {
    let dir = tmpdir("resume");
    let filter = "fig03,fig11";
    let clean = run_suite(&base(filter)).expect("filter matches");
    assert_eq!(clean.reports.len(), 2);

    // First run writes the checkpoint.
    let mut first = base(filter);
    first.checkpoint = Some(dir.clone());
    let r1 = run_suite(&first).expect("filter matches");
    assert_eq!(r1.resumed_jobs, 0);
    assert!(r1.executed_cells > 0);

    // Resume replays everything: zero cells execute, bytes identical.
    let mut second = first.clone();
    second.resume = true;
    let r2 = run_suite(&second).expect("filter matches");
    assert_eq!(r2.resumed_jobs, 2, "notes: {:?}", r2.notes);
    assert_eq!(r2.executed_cells, 0);
    for (a, b) in clean.reports.iter().zip(&r2.reports) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.output, b.output, "{} diverged across resume", a.name);
    }
    assert!(r2.reports.iter().all(|r| r.from_checkpoint));

    // Partial checkpoint: drop one job's file; only that job re-executes,
    // and the merged output still matches the clean run byte-for-byte.
    std::fs::remove_file(dir.join("fig03.out")).unwrap();
    let r3 = run_suite(&second).expect("filter matches");
    assert_eq!(r3.resumed_jobs, 1);
    assert!(r3.executed_cells > 0, "fig03 re-ran");
    for (a, b) in clean.reports.iter().zip(&r3.reports) {
        assert_eq!(
            a.output, b.output,
            "{} diverged after partial resume",
            a.name
        );
    }

    // A different seed must not replay this checkpoint.
    let mut other_seed = second.clone();
    other_seed.seed = 1042;
    let r4 = run_suite(&other_seed).expect("filter matches");
    assert_eq!(r4.resumed_jobs, 0, "key mismatch must discard");
    assert!(
        r4.notes.iter().any(|n| n.contains("mismatch")),
        "{:?}",
        r4.notes
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn suite_list_prints_every_job_with_a_description() {
    use experiments::runner::registry;
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_suite"))
        .arg("--list")
        .output()
        .expect("suite binary runs");
    assert!(out.status.success(), "--list must exit 0");
    let text = String::from_utf8(out.stdout).expect("utf8 listing");
    // Job lines, then `#`-prefixed operational notes (the fleet-threads
    // hint) which must come last and are not job rows.
    let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
    let jobs = registry();
    assert_eq!(
        lines.len(),
        jobs.len(),
        "one listing line per registered job:\n{text}"
    );
    assert!(
        text.lines()
            .skip_while(|l| !l.starts_with('#'))
            .all(|l| l.starts_with('#')),
        "notes must trail the job rows:\n{text}"
    );
    assert!(
        text.contains("--fleet-threads"),
        "--list must document the fleet-threads knob:\n{text}"
    );
    for (line, job) in lines.iter().zip(&jobs) {
        assert!(
            line.starts_with(job.name),
            "listing out of registry order: {line:?} vs {}",
            job.name
        );
        assert!(
            line.contains(job.desc),
            "missing description for {}: {line:?}",
            job.name
        );
        assert!(line.contains(&format!("{} cells", job.cells.len())));
    }
    // The canary is env-gated, never listed.
    assert!(!text.contains("canary"));
}

#[test]
fn filter_matching_nothing_lists_the_valid_ids() {
    let err = match run_suite(&base("not-a-figure")) {
        Err(e) => e,
        Ok(_) => panic!("zero-match filter must error"),
    };
    assert_eq!(err.filter, "not-a-figure");
    assert!(err.valid.contains(&"fig02") && err.valid.contains(&"chaos"));
    assert!(err.to_string().contains("valid figure ids"));
}
