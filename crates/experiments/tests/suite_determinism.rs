//! Acceptance gate for the parallel runner: for a fixed seed, the merged
//! per-figure output must be byte-identical between the serial path
//! (`--jobs 1`) and the parallel path at two different worker counts.
//! Per-cell seeds depend only on cell identity and parts merge in cell
//! order, so worker count and completion order must be unobservable.

use experiments::runner::{run_suite, SuiteOptions};
use experiments::Scale;

fn outputs(jobs: usize, filter: &str) -> Vec<(&'static str, String)> {
    let res = run_suite(&SuiteOptions {
        jobs,
        filter: Some(filter.into()),
        scale: Scale::Smoke,
        ..SuiteOptions::default()
    })
    .expect("filter matches");
    assert!(!res.reports.is_empty(), "filter {filter} matched nothing");
    res.reports
        .into_iter()
        .map(|r| (r.name, r.output))
        .collect()
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    // fig03 (2 cells) + fig11 (4 cells): cheap figures with float-heavy
    // reductions, plus the chaos cell (fault injection + resilience state
    // machine must replay identically) and the fleet cells (multi-host
    // churn, placement, and SLO merging must be worker-count-invariant;
    // the "fleet" filter substring-matches both the stochastic "fleet"
    // job and the trace-driven "fleet-replay" job, so the replayed day
    // is held to the same byte-identity gate), run serially and at two
    // parallel widths. The adversary matrix rides the same gate: attack
    // plans, domain rotation, and probe hardening must replay identically
    // at any worker count. The vcache job adds the LLC occupancy model
    // and the vcache prober timers to the gate: cache-aware placement
    // must replay identically at any worker count.
    for filter in ["fig03", "fig11", "chaos", "adversary", "fleet", "vcache"] {
        let serial = outputs(1, filter);
        for jobs in [2, 5] {
            let parallel = outputs(jobs, filter);
            assert_eq!(
                serial, parallel,
                "{filter}: --jobs {jobs} diverged from --jobs 1"
            );
        }
    }
}

#[test]
fn seed_changes_the_output() {
    // The seed actually reaches the cells: a different base seed must not
    // reproduce the same bytes (guards against accidentally fixed seeding).
    // table4 threads the seed into its workload RNG, so completion rates
    // shift with it.
    let a = run_suite(&SuiteOptions {
        jobs: 2,
        filter: Some("table4".into()),
        scale: Scale::Smoke,
        seed: 42,
        ..SuiteOptions::default()
    })
    .expect("filter matches");
    let b = run_suite(&SuiteOptions {
        jobs: 2,
        filter: Some("table4".into()),
        scale: Scale::Smoke,
        seed: 1042,
        ..SuiteOptions::default()
    })
    .expect("filter matches");
    assert_ne!(a.reports[0].output, b.reports[0].output);
}
