//! Acceptance gates for the adversary cell: the tick-dodger's steal is
//! real under sampled proportional share and structurally confined by the
//! domain schedule, and probe hardening strictly improves the victim's
//! tail under a window-targeted polluter.

use experiments::adversary::{run_dodge, run_pollute, GuestMode, HostPolicy};

const HORIZON_SECS: u64 = 8;
const SEED: u64 = 42;

#[test]
fn dodger_steals_under_sampled_proportional_but_not_under_domains() {
    let prop = run_dodge(HostPolicy::Proportional, GuestMode::Cfs, HORIZON_SECS, SEED);
    let domain = run_dodge(HostPolicy::Domain, GuestMode::Cfs, HORIZON_SECS, SEED);
    assert_eq!(prop.violations, 0, "prop dodge run must be law-clean");
    assert_eq!(domain.violations, 0, "domain dodge run must be law-clean");
    assert!(
        prop.steal_frac > 0.1,
        "tick-dodger must steal a measurable share under sampled accounting, got {:.3}",
        prop.steal_frac
    );
    assert!(
        domain.steal_frac < 0.02,
        "domain schedule must confine the dodger to its slice, got {:.3}",
        domain.steal_frac
    );
}

#[test]
fn hardened_probing_beats_stock_vsched_under_a_probe_polluter() {
    let stock = run_pollute(
        HostPolicy::Proportional,
        GuestMode::Vsched,
        HORIZON_SECS,
        SEED,
    );
    let hard = run_pollute(
        HostPolicy::Proportional,
        GuestMode::VschedHardened,
        HORIZON_SECS,
        SEED,
    );
    assert_eq!(stock.violations, 0, "stock pollute run must be law-clean");
    assert_eq!(hard.violations, 0, "hardened pollute run must be law-clean");
    assert_eq!(
        stock.rejected_samples, 0,
        "stock vSched has no rejection path"
    );
    assert!(
        hard.rejected_samples >= 3,
        "hardened probing must reject the polluted windows, got {}",
        hard.rejected_samples
    );
    assert!(
        hard.p99_ms < stock.p99_ms,
        "hardening must strictly improve victim p99 under pollution \
         (hardened {:.2} ms vs stock {:.2} ms)",
        hard.p99_ms,
        stock.p99_ms
    );
}
