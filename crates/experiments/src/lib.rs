//! Experiment harness: one driver per table and figure of the vSched paper.
//!
//! Every module reproduces one piece of the paper's evaluation (§2.3 and
//! §5): it builds the scenario on the simulated host, runs it under the
//! relevant scheduler configurations, and returns a typed result whose
//! `Display` prints the same rows/series the paper reports. The bench
//! targets in `crates/bench` are thin wrappers over these drivers, and the
//! integration tests assert the paper's *shape* claims (who wins, by
//! roughly what factor).
//!
//! Durations honour the `VSCHED_SCALE` environment variable
//! (`quick`/`paper`); see [`common::Scale`].

pub mod adversary;
pub mod chaos;
pub mod checkpoint;
pub mod common;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18_19;
pub mod fig20;
pub mod fig21;
pub mod fleet;
pub mod fleet_chaos;
pub mod oracle;
pub mod profiles;
pub mod replay;
pub mod runner;
pub mod shrink;
pub mod supervise;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod vcache;

pub use common::{Mode, Scale};
