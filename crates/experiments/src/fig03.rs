//! Figure 3: the stalled running task, with and without proactive
//! migration.
//!
//! A 4-vCPU VM whose vCPUs are each active 5 ms out of every 10 ms (phases
//! staggered 2.5 ms apart, as two competing pinned VMs produce on a real
//! host) runs a single CPU-bound thread. In *default* mode the scheduler
//! leaves the thread where it is: it stalls whenever its vCPU is preempted
//! — 50% of the time. In *migration* mode the thread migrates itself every
//! 4 ms to the next host-active vCPU, and utilization roughly doubles
//! (paper: "the vCPU utilization is doubled").

use crate::common::Scale;
use guestos::{
    GuestOs, MigrateKind, Platform, SpawnSpec, TaskAction, TaskId, TaskState, VcpuId, Workload,
};
use hostsim::{HostSpec, Machine, ScenarioBuilder, ScriptAction, VmSpec};
use metrics::Table;
use simcore::time::MS;
use simcore::SimTime;
use std::fmt;

/// Timer token for the self-migration tick.
const MIGRATE: u64 = 7;

/// The single CPU-bound thread, optionally self-migrating every 4 ms
/// (the paper's "migration mode").
struct SelfMigrating {
    task: Option<TaskId>,
    migrate: bool,
    nr_vcpus: usize,
}

impl Workload for SelfMigrating {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        let t = guest.spawn(plat, SpawnSpec::normal(self.nr_vcpus));
        self.task = Some(t);
        guest.wake_task(plat, t, None);
        if self.migrate {
            let at = plat.now().after(4 * MS);
            plat.set_timer(MIGRATE, at);
        }
    }

    fn on_timer(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform, token: u64) {
        if token != MIGRATE {
            return;
        }
        if let Some(t) = self.task {
            if let TaskState::Running(v) = guest.kern.task(t).state {
                // The thread can only migrate itself while actually
                // executing; it hops circularly to the next idle vCPU
                // (paper: "circularly migrated itself among idle vCPUs").
                if plat.vcpu_active(v) {
                    let cand = VcpuId((v.0 + 1) % self.nr_vcpus);
                    if guest.kern.vcpu_is_idle(cand) {
                        guest
                            .kern
                            .migrate_running(plat, v, cand, MigrateKind::Active);
                    }
                }
            }
        }
        let at = plat.now().after(4 * MS);
        plat.set_timer(MIGRATE, at);
    }

    fn next_action(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: TaskId) -> TaskAction {
        TaskAction::Compute { work: 1.0e18 }
    }

    fn label(&self) -> &str {
        "self-migrating"
    }
}

/// Result of one mode.
pub struct ModeResult {
    /// Task active-execution fraction of wall time.
    pub utilization: f64,
    /// Running-segment timeline per vCPU (for the ASCII rendering).
    pub segments: Vec<Vec<(SimTime, SimTime)>>,
}

/// The full Figure 3 result.
pub struct Fig03 {
    /// Default mode (no proactive migration).
    pub default_mode: ModeResult,
    /// Migration mode.
    pub migration_mode: ModeResult,
}

impl Fig03 {
    /// Utilization improvement factor.
    pub fn improvement(&self) -> f64 {
        self.migration_mode.utilization / self.default_mode.utilization.max(1e-9)
    }
}

impl fmt::Display for Fig03 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3: proactive migration prevents the stalled running task"
        )?;
        let mut t = Table::new(&["mode", "vCPU utilization", "improvement"]);
        t.row_owned(vec![
            "default (no migration)".into(),
            format!("{:.1}%", 100.0 * self.default_mode.utilization),
            "1.00x".into(),
        ]);
        t.row_owned(vec![
            "proactive self-migration".into(),
            format!("{:.1}%", 100.0 * self.migration_mode.utilization),
            format!("{:.2}x", self.improvement()),
        ]);
        writeln!(f, "{t}")?;
        writeln!(f, "Task placement timeline (80 ms, '#' = executing):")?;
        for (mode, r) in [
            ("default ", &self.default_mode),
            ("migrate ", &self.migration_mode),
        ] {
            for (v, segs) in r.segments.iter().enumerate() {
                let mut line = vec!['.'; 80];
                for (s, e) in segs {
                    let from = (s.ns() / MS) as usize;
                    let to = e.ns().div_ceil(MS) as usize;
                    for c in line.iter_mut().take(to.min(80)).skip(from.min(80)) {
                        *c = '#';
                    }
                }
                writeln!(f, "  {mode} vCPU{v}: {}", line.iter().collect::<String>())?;
            }
        }
        Ok(())
    }
}

pub(crate) fn run_mode(
    migrate: bool,
    secs: u64,
    seed: u64,
    check: Option<&trace::SharedCollector>,
) -> ModeResult {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(4), seed).vm(VmSpec::pinned(4, 0));
    let mut m: Machine = b.build();
    if let Some(shared) = check {
        m.attach_trace(shared);
    }
    m.trace_activity = true;
    // Staggered 5 ms on / 5 ms off phases: bandwidth installed at offsets.
    for v in 0..4 {
        m.at(
            SimTime::from_ns(v as u64 * 2_500_000),
            ScriptAction::SetBandwidth {
                vm,
                vcpu: v,
                qp: Some((5 * MS, 10 * MS)),
            },
        );
    }
    m.set_workload(
        vm,
        Box::new(SelfMigrating {
            task: None,
            migrate,
            nr_vcpus: 4,
        }),
    );
    m.start();
    m.run_until(SimTime::from_secs(secs));
    // The single task's execution time is the VM's delivered active time.
    let active: u64 = (0..4).map(|i| m.vcpu_active_ns(m.gv(vm, i))).sum();
    let utilization = active as f64 / (secs as f64 * 1e9);
    let segments = (0..4)
        .map(|i| m.vcpus[m.gv(vm, i)].trace_segments.clone())
        .collect();
    ModeResult {
        utilization,
        segments,
    }
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig03 {
    let secs = scale.secs(5, 20);
    Fig03 {
        default_mode: run_mode(false, secs, seed, None),
        migration_mode: run_mode(true, secs, seed, None),
    }
}

/// Runs the figure with the streaming invariant checker attached to each
/// machine, returning one report per mode.
pub fn run_checked(seed: u64, scale: Scale) -> (Fig03, Vec<trace::CheckReport>) {
    let secs = scale.secs(5, 20);
    let c0 = crate::common::checked_collector();
    let default_mode = run_mode(false, secs, seed, Some(&c0));
    let c1 = crate::common::checked_collector();
    let migration_mode = run_mode(true, secs, seed, Some(&c1));
    (
        Fig03 {
            default_mode,
            migration_mode,
        },
        vec![
            crate::common::check_report(&c0),
            crate::common::check_report(&c1),
        ],
    )
}
