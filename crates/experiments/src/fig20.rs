//! Figure 20: cost of vSched — total cycles and cycles per second.
//!
//! Re-runs six representative workloads from the overall evaluation on both
//! profiles, collecting the VM's consumed cycles (capacity-integrated
//! running time) and CPS. The paper finds throughput workloads pay ~5.5%
//! more cycles for ~38% more CPS, and latency workloads pay more cycles
//! (probing keeps vCPUs busy) while remaining light in absolute terms.

use crate::common::{Mode, Scale};
use crate::fig18_19::ProfileKind;
use crate::profiles::{hpvm, rcvm};
use metrics::Table;
use simcore::{SimRng, SimTime};
use std::fmt;
use workloads::build_loaded;

/// Benchmarks in the figure.
pub const BENCHES: [&str; 6] = [
    "bodytrack",
    "swaptions",
    "lu_cb",
    "img-dnn",
    "specjbb",
    "sphinx",
];

/// One cell: cycles and CPS.
#[derive(Debug, Clone, Copy)]
pub struct Cost {
    /// Cycles consumed per completed unit of work (the paper's fixed-work
    /// total-cycles comparison, expressed per unit since our runs are
    /// fixed-time).
    pub cycles: f64,
    /// Cycles per second of wall time (vCPU utilization).
    pub cps: f64,
}

/// Figure 20 result: per (profile, bench): (CFS, vSched).
pub struct Fig20 {
    /// Rows: (profile, bench, cfs, vsched).
    pub rows: Vec<(ProfileKind, &'static str, Cost, Cost)>,
}

impl fmt::Display for Fig20 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 20: vSched cost (cycles, CPS) vs CFS")?;
        let mut t = Table::new(&["profile", "benchmark", "cycles vs CFS", "CPS vs CFS"]);
        for (p, bench, cfs, vs) in &self.rows {
            t.row_owned(vec![
                format!("{p:?}"),
                bench.to_string(),
                format!("{:+.1}%", 100.0 * (vs.cycles / cfs.cycles.max(1.0) - 1.0)),
                format!("{:+.1}%", 100.0 * (vs.cps / cfs.cps.max(1.0) - 1.0)),
            ]);
        }
        write!(f, "{t}")
    }
}

pub(crate) fn run_cell(kind: ProfileKind, bench: &str, mode: Mode, secs: u64, seed: u64) -> Cost {
    let mut p = match kind {
        ProfileKind::Rcvm => rcvm(seed),
        ProfileKind::Hpvm => hpvm(seed),
    };
    let nr = p.machine.vms[p.vm].nr_vcpus;
    let (wl, h) = build_loaded(bench, nr, 0.15, SimRng::new(seed ^ 0xCC));
    p.machine.set_workload(p.vm, wl);
    mode.install(&mut p.machine, p.vm);
    p.machine.start();
    p.machine.run_until(SimTime::from_secs(secs));
    let cycles = p.machine.vms[p.vm].cycles.value();
    Cost {
        cycles: cycles / h.completed().max(1) as f64,
        cps: cycles / secs as f64,
    }
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig20 {
    let secs = scale.secs(6, 25);
    let mut rows = Vec::new();
    for kind in [ProfileKind::Hpvm, ProfileKind::Rcvm] {
        for &bench in &BENCHES {
            let cfs = run_cell(kind, bench, Mode::Cfs, secs, seed);
            let vs = run_cell(kind, bench, Mode::Vsched, secs, seed);
            rows.push((kind, bench, cfs, vs));
        }
    }
    Fig20 { rows }
}
