//! Figure 15 and Table 4: increased throughput with ivh.
//!
//! A 16-vCPU VM shares its 16 cores with a stressor VM (each vCPU gets
//! ~50%). Throughput-oriented workloads run with 1–16 threads; with fewer
//! threads there are unused vCPUs whose cycles a stalled running task could
//! harvest. ivh proactively migrates the task just before its vCPU goes
//! inactive — pre-waking the target — and the paper reports up to 82%
//! higher throughput (17% on average even at 16 threads).
//!
//! Table 4 isolates the value of activity awareness: canneal run times with
//! pre-waking ivh vs the direct (activity-unaware) migration ablation.

use crate::common::{Mode, Scale};
use hostsim::{HostSpec, Machine, ScenarioBuilder, VmSpec};
use metrics::Table;
use simcore::{SimRng, SimTime};
use std::fmt;
use vsched::VschedConfig;
use workloads::{build, work_ms, Stressor};

/// Workloads in the figure.
pub const BENCHES: [&str; 11] = [
    "streamcluster",
    "canneal",
    "blackscholes",
    "bodytrack",
    "dedup",
    "ocean_cp",
    "ocean_ncp",
    "radiosity",
    "radix",
    "fft",
    "pbzip2",
];

/// Thread counts swept.
pub const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

/// Figure 15 result: improvement\[bench]\[thread-idx] as a fraction.
pub struct Fig15 {
    /// Per benchmark: throughput with/without ivh per thread count.
    pub rows: Vec<(&'static str, Vec<(f64, f64)>)>,
}

impl Fig15 {
    /// Improvement fraction for one cell.
    pub fn improvement(&self, bench: &str, threads_idx: usize) -> f64 {
        self.rows
            .iter()
            .find(|(b, _)| *b == bench)
            .map(|(_, cells)| {
                let (without, with) = cells[threads_idx];
                with / without.max(1e-12) - 1.0
            })
            .unwrap_or(0.0)
    }

    /// Mean improvement across benchmarks at one thread count.
    pub fn mean_improvement(&self, threads_idx: usize) -> f64 {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .map(|(b, _)| self.improvement(b, threads_idx))
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

impl fmt::Display for Fig15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 15: throughput improvement with ivh (%) vs thread count"
        )?;
        let mut t = Table::new(&["benchmark", "1", "2", "4", "8", "16"]);
        for (bench, _) in &self.rows {
            let cells: Vec<String> = (0..THREADS.len())
                .map(|i| format!("{:+.0}%", 100.0 * self.improvement(bench, i)))
                .collect();
            t.row_owned(std::iter::once(bench.to_string()).chain(cells).collect());
        }
        writeln!(f, "{t}")?;
        for (i, &n) in THREADS.iter().enumerate() {
            writeln!(
                f,
                "mean improvement at {n} threads: {:+.0}%",
                100.0 * self.mean_improvement(i)
            )?;
        }
        Ok(())
    }
}

/// Builds the overcommitted machine shared by Figure 15 and Table 4.
pub fn build_machine(seed: u64) -> (Machine, usize) {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(16), seed).vm(VmSpec::pinned(16, 0));
    let (b, stress_vm) = b.vm(VmSpec::pinned(16, 0));
    let mut m = b.build();
    let (sw, _s) = Stressor::new(16, work_ms(10.0));
    m.set_workload(stress_vm, Box::new(sw));
    (m, vm)
}

/// Runs one cell; returns the completion rate.
pub fn run_cell(bench: &str, threads: usize, with_ivh: bool, secs: u64, seed: u64) -> f64 {
    run_cell_traced(bench, threads, with_ivh, secs, seed, None)
}

/// Runs one cell with the invariant checker attached; returns the
/// completion rate and the checker's verdict.
pub fn run_cell_checked(
    bench: &str,
    threads: usize,
    with_ivh: bool,
    secs: u64,
    seed: u64,
) -> (f64, trace::CheckReport) {
    let shared = crate::common::checked_collector();
    let rate = run_cell_traced(bench, threads, with_ivh, secs, seed, Some(&shared));
    (rate, crate::common::check_report(&shared))
}

fn run_cell_traced(
    bench: &str,
    threads: usize,
    with_ivh: bool,
    secs: u64,
    seed: u64,
    check: Option<&trace::SharedCollector>,
) -> f64 {
    let (mut m, vm) = build_machine(seed);
    if let Some(shared) = check {
        m.attach_trace(shared);
    }
    let (wl, handle) = build(bench, threads, SimRng::new(seed ^ 0xE1));
    m.set_workload(vm, wl);
    let cfg = if with_ivh {
        VschedConfig {
            bvs: false,
            rwc: false,
            ..VschedConfig::full()
        }
    } else {
        VschedConfig::probers_only()
    };
    Mode::install_custom(&mut m, vm, cfg);
    m.start();
    let dur = SimTime::from_secs(secs);
    m.run_until(dur);
    handle.rate(dur)
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig15 {
    let secs = scale.secs(8, 30);
    let rows = BENCHES
        .iter()
        .map(|&bench| {
            let cells = THREADS
                .iter()
                .map(|&t| {
                    (
                        run_cell(bench, t, false, secs, seed),
                        run_cell(bench, t, true, secs, seed),
                    )
                })
                .collect();
            (bench, cells)
        })
        .collect();
    Fig15 { rows }
}
