//! Figure 12: effective SMT-aware scheduling with vtop.
//!
//! A 32-vCPU VM is pinned to 16 SMT pairs (32 hardware threads on 16
//! cores).
//!
//! (a) **Underloaded system**: sysbench runs 16 CPU-bound threads. Without
//! SMT topology the scheduler often lands two threads on sibling hardware
//! threads of one core, leaving whole cores idle (paper: 11–12 of 16 cores
//! used); with vtop's SMT domains the idle-core search spreads them
//! (15–16 cores).
//!
//! (b) **Mixed workloads**: CPU-intensive Matmul shares the VM with
//! memory-/IO-bound Nginx or Fio (16 threads each). Correct SMT topology
//! resolves the resource conflicts (paper: up to +18% Matmul, +5% Nginx,
//! no Fio degradation).

use crate::common::{Mode, Scale};
use guestos::TaskState;
use hostsim::{HostSpec, Machine, Pinning, ScenarioBuilder, VmSpec};
use metrics::Table;
use simcore::time::{MS, SEC};
use simcore::{SimRng, SimTime};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use vsched::VschedConfig;
use workloads::{build, MultiWorkload};

/// Result of the underloaded-system part.
#[derive(Debug, Clone)]
pub struct ActiveCores {
    /// Histogram over "number of cores executing benchmark work" samples
    /// (index = core count).
    pub histogram: Vec<u64>,
    /// Mean active cores.
    pub mean: f64,
}

/// Result of one mixed-workload pairing.
#[derive(Debug, Clone)]
pub struct Mixed {
    /// Partner benchmark name.
    pub partner: &'static str,
    /// Matmul events/s.
    pub matmul: f64,
    /// Partner completion rate.
    pub partner_rate: f64,
}

/// Figure 12 result.
pub struct Fig12 {
    /// (a) stock CFS.
    pub cores_cfs: ActiveCores,
    /// (a) CFS + vtop.
    pub cores_vtop: ActiveCores,
    /// (b) per partner: (CFS, CFS+vtop).
    pub mixed: Vec<(Mixed, Mixed)>,
}

impl fmt::Display for Fig12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 12a: active cores with 16 threads on 16 SMT pairs (higher is better)"
        )?;
        let mut t = Table::new(&["config", "mean active cores", "P(>=15 cores)"]);
        for (label, c) in [("CFS", &self.cores_cfs), ("CFS + vtop", &self.cores_vtop)] {
            let total: u64 = c.histogram.iter().sum();
            let high: u64 = c.histogram.iter().skip(15).sum();
            t.row_owned(vec![
                label.into(),
                format!("{:.1}", c.mean),
                format!("{:.0}%", 100.0 * high as f64 / total.max(1) as f64),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "Figure 12b: mixed workloads (normalized to CFS = 100)")?;
        let mut t = Table::new(&["pairing", "Matmul", "partner"]);
        for (cfs, vtop) in &self.mixed {
            t.row_owned(vec![
                format!("Matmul + {}", cfs.partner),
                format!("{:.1}", 100.0 * vtop.matmul / cfs.matmul.max(1e-12)),
                format!(
                    "{:.1}",
                    100.0 * vtop.partner_rate / cfs.partner_rate.max(1e-12)
                ),
            ]);
        }
        write!(f, "{t}")
    }
}

fn smt_host() -> HostSpec {
    HostSpec::new(1, 16, 2) // 16 cores x 2 threads
}

pub(crate) fn run_underloaded(with_vtop: bool, secs: u64, seed: u64) -> ActiveCores {
    let (b, vm) = ScenarioBuilder::new(smt_host(), seed).vm(VmSpec {
        nr_vcpus: 32,
        pinning: Pinning::OneToOne((0..32).collect()),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let mut m = b.build();
    let (wl, _h) = build("sysbench", 16, SimRng::new(seed ^ 0xB1));
    m.set_workload(vm, wl);
    if with_vtop {
        Mode::install_custom(&mut m, vm, VschedConfig::probers_only());
    }
    let hist: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(vec![0; 17]));
    let hist_ref = Rc::clone(&hist);
    m.add_sampler(
        10 * MS,
        Box::new(move |m: &Machine| {
            // Count cores executing a normal-policy benchmark task.
            let kern = &m.vms[0].guest.kern;
            let mut cores = [false; 16];
            for v in 0..32 {
                if let Some(t) = kern.vcpus[v].curr {
                    let task = kern.task(t);
                    if !task.policy.is_idle()
                        && matches!(task.program, guestos::TaskProgram::Workload)
                        && matches!(task.state, TaskState::Running(_))
                        && m.vcpu_active_ns(m.gv(0, v)) > 0
                    {
                        cores[m.spec.core_of(v)] = true;
                    }
                }
            }
            let n = cores.iter().filter(|c| **c).count();
            hist_ref.borrow_mut()[n] += 1;
        }),
    );
    // Skip vtop's initial probing transient before sampling matters; the
    // histogram covers the whole run, which is dominated by steady state.
    m.start();
    m.run_until(SimTime::from_secs(secs));
    let histogram = hist.borrow().clone();
    let total: u64 = histogram.iter().sum();
    let mean = histogram
        .iter()
        .enumerate()
        .map(|(n, c)| n as f64 * *c as f64)
        .sum::<f64>()
        / total.max(1) as f64;
    ActiveCores { histogram, mean }
}

pub(crate) fn run_mixed(partner: &'static str, with_vtop: bool, secs: u64, seed: u64) -> Mixed {
    let (b, vm) = ScenarioBuilder::new(smt_host(), seed).vm(VmSpec {
        nr_vcpus: 32,
        pinning: Pinning::OneToOne((0..32).collect()),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let mut m = b.build();
    let (mat, mat_h) = build("matmul", 16, SimRng::new(seed ^ 0xB2));
    let (pw, pw_h) = build(partner, 16, SimRng::new(seed ^ 0xB3));
    m.set_workload(vm, Box::new(MultiWorkload::new(vec![mat, pw])));
    if with_vtop {
        Mode::install_custom(&mut m, vm, VschedConfig::probers_only());
    }
    m.start();
    let dur = SimTime::from_secs(secs);
    m.run_until(dur);
    Mixed {
        partner,
        matmul: mat_h.rate(dur),
        partner_rate: pw_h.rate(dur),
    }
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig12 {
    let secs = scale.secs(8, 40);
    let _ = SEC;
    Fig12 {
        cores_cfs: run_underloaded(false, secs, seed),
        cores_vtop: run_underloaded(true, secs, seed),
        mixed: vec![
            (
                run_mixed("nginx", false, secs, seed),
                run_mixed("nginx", true, secs, seed),
            ),
            (
                run_mixed("fio", false, secs, seed),
                run_mixed("fio", true, secs, seed),
            ),
        ],
    }
}
