//! Figure 17: vSched in a multi-tenant host.
//!
//! Nginx's VM shares 16 cores with co-located VMs whose vCPUs float freely;
//! the neighbours change over three phases: *intermittent* interference
//! (facesim + ferret, synchronization-heavy), *consistent* interference
//! (swaptions + raytrace, computation-heavy), then *transient* interference
//! (four latency-sensitive VMs with small tasks). We compare Nginx's
//! throughput under CFS vs vSched per phase, and measure the slowdown
//! vSched imposes on the neighbours.

use crate::common::{Mode, Scale};
use hostsim::{HostSpec, Machine, ScenarioBuilder, VmSpec};
use metrics::Table;
use simcore::time::SEC;
use simcore::{SimRng, SimTime};
use std::fmt;
use workloads::{build, DelayedWorkload, Handle};

/// Phase labels.
pub const PHASES: [&str; 3] = ["intermittent", "consistent", "transient"];

/// One mode's outcome.
pub struct ModeOutcome {
    /// Nginx requests/s per phase.
    pub nginx: [f64; 3],
    /// Neighbour completion totals per phase (for degradation accounting).
    pub neighbours: [f64; 3],
}

/// Figure 17 result.
pub struct Fig17 {
    /// Stock CFS in the Nginx VM.
    pub cfs: ModeOutcome,
    /// vSched in the Nginx VM.
    pub vsched: ModeOutcome,
}

impl fmt::Display for Fig17 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 17: Nginx under multi-tenant interference (req/s) and \
             neighbour degradation under vSched"
        )?;
        let mut t = Table::new(&[
            "phase",
            "CFS nginx",
            "vSched nginx",
            "gain",
            "neighbour impact",
        ]);
        for (i, name) in PHASES.iter().enumerate() {
            let gain = self.vsched.nginx[i] / self.cfs.nginx[i].max(1e-9) - 1.0;
            let degr = 1.0 - self.vsched.neighbours[i] / self.cfs.neighbours[i].max(1e-9);
            t.row_owned(vec![
                name.to_string(),
                format!("{:.0}", self.cfs.nginx[i]),
                format!("{:.0}", self.vsched.nginx[i]),
                format!("{:+.0}%", 100.0 * gain),
                format!("{:+.1}%", -100.0 * degr),
            ]);
        }
        write!(f, "{t}")
    }
}

struct Neighbour {
    handle: Handle,
    phase: usize,
}

pub(crate) fn run_mode(mode: Mode, phase_secs: u64, seed: u64) -> ModeOutcome {
    let threads: Vec<usize> = (0..16).collect();
    let (mut b, nginx_vm) =
        ScenarioBuilder::new(HostSpec::flat(16), seed).vm(VmSpec::floating(16, threads.clone()));
    // Two 16-vCPU neighbour VMs for phases 1-2, four 8-vCPU VMs for phase 3.
    let mut vm_ids = Vec::new();
    for _ in 0..2 {
        let (nb, id) = b.vm(VmSpec::floating(16, threads.clone()));
        b = nb;
        vm_ids.push(id);
    }
    for _ in 0..4 {
        let (nb, id) = b.vm(VmSpec::floating(8, threads.clone()));
        b = nb;
        vm_ids.push(id);
    }
    let mut m: Machine = b.build();

    let (wl, nginx_handle) = build("nginx", 16, SimRng::new(seed ^ 0xF2));
    m.set_workload(nginx_vm, wl);

    // Neighbour workloads per phase; each runs for one phase (finite-ish
    // via delayed start; ended by the next phase's arrival of load — the
    // paper terminates them, we let the finite run lengths approximate it).
    let mut neighbours: Vec<Neighbour> = Vec::new();
    let mut add =
        |m: &mut Machine, vm: usize, bench: &str, threads: usize, phase: usize, seed: u64| {
            let (wl, handle) = build(bench, threads, SimRng::new(seed));
            let delayed = DelayedWorkload::new(wl, phase as u64 * phase_secs * SEC);
            m.set_workload(vm, Box::new(delayed));
            neighbours.push(Neighbour { handle, phase });
        };
    // Phase 0: intermittent (sync-heavy).
    add(&mut m, vm_ids[0], "facesim", 16, 0, seed ^ 1);
    add(&mut m, vm_ids[1], "dedup", 16, 0, seed ^ 2); // ferret archetype: pipeline
                                                      // Phase 1: consistent (compute-heavy) — reuse the four phase-3 VMs'
                                                      // slots cannot overlap, so these go on the first two VMs? They are
                                                      // busy; instead run them on two of the 8-vCPU VMs.
    add(&mut m, vm_ids[2], "swaptions", 8, 1, seed ^ 3);
    add(&mut m, vm_ids[3], "raytrace", 8, 1, seed ^ 4);
    // Phase 2: transient (small latency-sensitive tasks).
    add(&mut m, vm_ids[4], "masstree", 8, 2, seed ^ 5);
    add(&mut m, vm_ids[5], "silo", 8, 2, seed ^ 6);

    mode.install(&mut m, nginx_vm);
    m.start();

    // Phase-sliced Nginx throughput from its live series; neighbour
    // completions sampled at phase ends.
    let mut nginx = [0.0; 3];
    let mut neigh = [0.0; 3];
    let mut prev_counts = vec![0u64; neighbours.len()];
    for phase in 0..3 {
        m.run_until(SimTime::from_secs((phase as u64 + 1) * phase_secs));
        let mut total = 0.0;
        for (i, n) in neighbours.iter().enumerate() {
            if n.phase == phase {
                total += (n.handle.completed() - prev_counts[i]) as f64;
            }
            prev_counts[i] = n.handle.completed();
        }
        neigh[phase] = total.max(1.0);
        if let Handle::Latency(s) = &nginx_handle {
            let rates = s
                .borrow()
                .series
                .as_ref()
                .map(|ts| ts.rates_per_sec())
                .unwrap_or_default();
            let from = (phase as u64 * phase_secs + 2) as usize;
            let to = ((phase as u64 + 1) * phase_secs) as usize;
            let w = &rates[from.min(rates.len())..to.min(rates.len())];
            nginx[phase] = w.iter().sum::<f64>() / w.len().max(1) as f64;
        }
    }
    ModeOutcome {
        nginx,
        neighbours: neigh,
    }
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig17 {
    let phase_secs = scale.secs(10, 80);
    Fig17 {
        cfs: run_mode(Mode::Cfs, phase_secs, seed),
        vsched: run_mode(Mode::Vsched, phase_secs, seed),
    }
}
