//! Figure 4: deficient work conservation.
//!
//! Two situations where placing tasks on an *idle* vCPU hurts:
//!
//! * **Straggler vCPU** — one of 16 pinned vCPUs is crushed by a
//!   high-priority host task; leaving it idle (non-work-conserving) beats
//!   using it for synchronization-intensive benchmarks (paper: up to 43%).
//! * **Stacking vCPUs** — 16 vCPUs stacked in pairs on 8 cores; excluding
//!   one vCPU per pair avoids expensive vCPU switches (up to 30%), and with
//!   a best-effort workload on one vCPU of each pair, excluding the *other*
//!   vCPU avoids host-level priority inversion entirely (up to 6.7×).
//!
//! Work conservation is relaxed here by hand (cgroup bans) — this is the
//! motivation experiment that rwc later automates.

use crate::common::Scale;
use hostsim::{HostSpec, Pinning, ScenarioBuilder, VmSpec};
use metrics::Table;
use simcore::{SimRng, SimTime};
use std::fmt;
use workloads::{build, work_ms, MultiWorkload, Stressor};

/// Benchmarks used in the figure.
pub const BENCHES: [&str; 3] = ["canneal", "dedup", "streamcluster"];

/// One (scenario, benchmark) pair of measurements.
#[derive(Debug, Clone)]
pub struct Pair {
    /// Benchmark name.
    pub bench: &'static str,
    /// Throughput under the work-conserving policy.
    pub work_conserving: f64,
    /// Throughput with problematic vCPUs excluded.
    pub non_work_conserving: f64,
}

impl Pair {
    /// Improvement of non-work-conserving over work-conserving.
    pub fn improvement(&self) -> f64 {
        self.non_work_conserving / self.work_conserving.max(1e-12)
    }
}

/// The full Figure 4 result.
pub struct Fig04 {
    /// Left: straggler vCPU scenario.
    pub straggler: Vec<Pair>,
    /// Right, first half: plain stacking scenario.
    pub stacking: Vec<Pair>,
    /// Right, second half: stacking with a best-effort workload (priority
    /// inversion).
    pub priority_inversion: Vec<Pair>,
}

impl fmt::Display for Fig04 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4: non-work-conserving placement beats work conservation \
             on problematic vCPUs (throughput normalized to non-work-conserving = 100)"
        )?;
        let mut t = Table::new(&[
            "scenario",
            "benchmark",
            "work-conserving",
            "non-work-conserving",
        ]);
        for (name, pairs) in [
            ("straggler", &self.straggler),
            ("stacking", &self.stacking),
            ("stacking+prio-inv", &self.priority_inversion),
        ] {
            for p in pairs {
                t.row_owned(vec![
                    name.into(),
                    p.bench.into(),
                    format!(
                        "{:.1}",
                        100.0 * p.work_conserving / p.non_work_conserving.max(1e-12)
                    ),
                    "100.0".into(),
                ]);
            }
        }
        write!(f, "{t}")
    }
}

pub(crate) fn straggler_cell(bench: &'static str, exclude: bool, secs: u64, seed: u64) -> f64 {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(16), seed).vm(VmSpec::pinned(16, 0));
    let mut m = b.host_load(15, 15 * 1024).build();
    if exclude {
        m.vms[vm].guest.kern.cgroup.ban(15);
    }
    let (wl, handle) = build(bench, 16, SimRng::new(seed ^ 0x41));
    m.set_workload(vm, wl);
    m.start();
    let dur = SimTime::from_secs(secs);
    m.run_until(dur);
    handle.rate(dur)
}

pub(crate) fn stacking_cell(
    bench: &'static str,
    exclude: bool,
    with_best_effort: bool,
    secs: u64,
    seed: u64,
) -> f64 {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(8), seed).vm(VmSpec {
        nr_vcpus: 16,
        pinning: Pinning::stacked_pairs(0, 16),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let mut m = b.build();
    let threads = if with_best_effort { 8 } else { 16 };
    let (wl, handle) = build(bench, threads, SimRng::new(seed ^ 0x42));
    if with_best_effort {
        // Best-effort load pinned on the odd vCPU of each stack pair; the
        // host cannot see that it is low priority (priority inversion).
        let odd: Vec<usize> = (0..16).filter(|v| v % 2 == 1).collect();
        let (be, _s) = Stressor::new(8, work_ms(10.0));
        let be = be.best_effort().pinned(odd);
        if exclude {
            // Exclude the vCPUs *not* running the best-effort load, so the
            // benchmark shares vCPUs with it under guest control instead.
            for v in (0..16).filter(|v| v % 2 == 0) {
                m.vms[vm].guest.kern.cgroup.ban(v);
            }
        }
        // The best-effort load starts first so the benchmark's initial
        // placement sees those vCPUs as occupied (as on a real system).
        m.set_workload(vm, Box::new(MultiWorkload::new(vec![Box::new(be), wl])));
    } else {
        if exclude {
            for v in (0..16).filter(|v| v % 2 == 1) {
                m.vms[vm].guest.kern.cgroup.ban(v);
            }
        }
        m.set_workload(vm, wl);
    }
    m.start();
    let dur = SimTime::from_secs(secs);
    m.run_until(dur);
    handle.rate(dur)
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig04 {
    let secs = scale.secs(6, 25);
    let straggler = BENCHES
        .iter()
        .map(|&bench| Pair {
            bench,
            work_conserving: straggler_cell(bench, false, secs, seed),
            non_work_conserving: straggler_cell(bench, true, secs, seed),
        })
        .collect();
    let stacking = BENCHES
        .iter()
        .map(|&bench| Pair {
            bench,
            work_conserving: stacking_cell(bench, false, false, secs, seed),
            non_work_conserving: stacking_cell(bench, true, false, secs, seed),
        })
        .collect();
    let priority_inversion = BENCHES
        .iter()
        .map(|&bench| Pair {
            bench,
            work_conserving: stacking_cell(bench, false, true, secs, seed),
            non_work_conserving: stacking_cell(bench, true, true, secs, seed),
        })
        .collect();
    Fig04 {
        straggler,
        stacking,
        priority_inversion,
    }
}
