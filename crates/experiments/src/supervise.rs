//! Supervised cell execution: panic isolation, deadlines, retries.
//!
//! The suite runner shards the paper's evaluation into ~460 independent
//! cells. Before this layer, one panicking or runaway cell aborted the
//! whole run and discarded every finished result. Supervision gives each
//! cell the failure domain it deserves — exactly one cell:
//!
//! * **Panic isolation** — every cell executes under
//!   [`std::panic::catch_unwind`]; a panic is caught, its message captured,
//!   and the worker thread survives to run the next cell. A process-wide
//!   quiet hook keeps retried panics from spraying backtraces over the
//!   suite's stderr (the final failure report carries the message instead).
//! * **Deadlines** — each attempt is timed against a wall-clock budget
//!   (per-cell override, else the suite-wide default). Cells run
//!   synchronously on the worker, so a deadline is *detected at attempt
//!   completion*, not enforced preemptively: a cell that returns late is
//!   treated as failed, never merged, and retried like a panic. This keeps
//!   the simulator single-threaded per cell — determinism is worth more
//!   than a hard kill.
//! * **Retries with capped exponential backoff** — environmental failures
//!   (memory pressure, a loaded CI host blowing a deadline) deserve another
//!   attempt; the cell's seed never changes across attempts, so a retry
//!   that succeeds produces exactly the bytes a clean run would have.
//!
//! A cell that exhausts its retries becomes a typed [`CellFailure`] in the
//! suite's failure report; its job is marked failed but every other job
//! merges and renders exactly as in a clean run.

use crate::common::Scale;
use crate::runner::{CellSpec, Part};
use simcore::json::Json;
use std::cell::Cell as StdCell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;
use std::time::{Duration, Instant};

/// Retry/deadline policy for one suite run.
#[derive(Debug, Clone)]
pub struct SupervisePolicy {
    /// Additional attempts after the first failed one.
    pub retries: u32,
    /// Suite-wide per-attempt wall-clock budget (`None` = unlimited).
    /// A cell's own [`CellSpec::deadline`] overrides this.
    pub deadline: Option<Duration>,
    /// First backoff sleep; doubles per subsequent retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for SupervisePolicy {
    fn default() -> Self {
        SupervisePolicy {
            retries: 2,
            deadline: None,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
        }
    }
}

impl SupervisePolicy {
    /// The sleep before retry number `attempt` (1-based): capped
    /// exponential, `base * 2^(attempt-1)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_cap)
    }
}

/// Why a cell's final attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The cell panicked; the payload message is preserved.
    Panic(String),
    /// The attempt finished after its wall-clock budget.
    Deadline {
        /// Budget the attempt was given.
        budget_ms: u64,
        /// What it actually took.
        elapsed_ms: u64,
    },
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::Panic(msg) => write!(f, "panic: {msg}"),
            FailureCause::Deadline {
                budget_ms,
                elapsed_ms,
            } => write!(f, "deadline: {elapsed_ms}ms > budget {budget_ms}ms"),
        }
    }
}

/// One cell that exhausted its retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Owning figure/table id.
    pub figure: String,
    /// Cell label within the figure.
    pub label: String,
    /// The cell's (unchanged across attempts) seed.
    pub seed: u64,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// The final attempt's failure.
    pub cause: FailureCause,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} seed={} after {} attempt{}: {}",
            self.figure,
            self.label,
            self.seed,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.cause
        )
    }
}

impl CellFailure {
    /// JSON object for the machine-readable failure report.
    pub fn to_json(&self) -> Json {
        let (kind, detail) = match &self.cause {
            FailureCause::Panic(msg) => ("panic", Json::Str(msg.clone())),
            FailureCause::Deadline {
                budget_ms,
                elapsed_ms,
            } => (
                "deadline",
                Json::obj([
                    ("budget_ms", Json::Uint(*budget_ms)),
                    ("elapsed_ms", Json::Uint(*elapsed_ms)),
                ]),
            ),
        };
        Json::obj([
            ("figure", self.figure.as_str().into()),
            ("label", self.label.as_str().into()),
            ("seed", Json::Uint(self.seed)),
            ("attempts", Json::Uint(self.attempts as u64)),
            ("cause", kind.into()),
            ("detail", detail),
        ])
    }
}

/// The structured failure report a supervised run emits when cells die.
#[derive(Debug, Clone, Default)]
pub struct FailureReport {
    /// Every cell that exhausted its retries, in (job, cell) order.
    pub failures: Vec<CellFailure>,
}

impl FailureReport {
    /// Whether every cell survived.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// Machine-readable rendering (written next to the checkpoint).
    pub fn to_json(&self) -> String {
        Json::obj([
            ("failed_cells", Json::Uint(self.failures.len() as u64)),
            (
                "failures",
                Json::Arr(self.failures.iter().map(|f| f.to_json()).collect()),
            ),
        ])
        .render()
    }
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# {} cell(s) FAILED under supervision:",
            self.failures.len()
        )?;
        for cf in &self.failures {
            writeln!(f, "#   FAILED {cf}")?;
        }
        Ok(())
    }
}

thread_local! {
    /// Set while this thread runs a supervised cell attempt: the quiet
    /// panic hook swallows the default backtrace print for it.
    static QUIET_PANICS: StdCell<bool> = const { StdCell::new(false) };
}

static HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stays silent for
/// supervised cell attempts and delegates to the previous hook for every
/// other panic — test harness failures still print normally.
pub fn install_quiet_panic_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one cell under supervision. On success returns the part and the
/// *successful attempt's* compute seconds (failed attempts don't pollute
/// the per-job CPU accounting); on exhaustion returns the typed failure.
pub fn run_cell(
    figure: &str,
    cell: &CellSpec,
    seed: u64,
    scale: Scale,
    policy: &SupervisePolicy,
) -> Result<(Part, f64), CellFailure> {
    install_quiet_panic_hook();
    let budget = cell.deadline.or(policy.deadline);
    let mut last_cause = None;
    for attempt in 1..=policy.retries + 1 {
        if attempt > 1 {
            std::thread::sleep(policy.backoff(attempt - 1));
        }
        let t0 = Instant::now();
        QUIET_PANICS.with(|q| q.set(true));
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| cell.execute(seed, scale)));
        QUIET_PANICS.with(|q| q.set(false));
        let elapsed = t0.elapsed();
        match outcome {
            Ok(part) => {
                if let Some(b) = budget {
                    if elapsed > b {
                        last_cause = Some(FailureCause::Deadline {
                            budget_ms: b.as_millis() as u64,
                            elapsed_ms: elapsed.as_millis() as u64,
                        });
                        continue;
                    }
                }
                return Ok((part, elapsed.as_secs_f64()));
            }
            Err(payload) => {
                last_cause = Some(FailureCause::Panic(panic_message(payload)));
            }
        }
    }
    Err(CellFailure {
        figure: figure.to_string(),
        label: cell.label.clone(),
        seed,
        attempts: policy.retries + 1,
        cause: last_cause.expect("at least one attempt ran"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::cell;

    fn policy(retries: u32, deadline_ms: Option<u64>) -> SupervisePolicy {
        SupervisePolicy {
            retries,
            deadline: deadline_ms.map(Duration::from_millis),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
        }
    }

    #[test]
    fn healthy_cell_passes_through() {
        let c = cell("ok", |seed, _| seed * 2);
        let (part, _) = run_cell("figX", &c, 21, Scale::Smoke, &policy(0, None)).unwrap();
        assert_eq!(*part.downcast::<u64>().unwrap(), 42);
    }

    #[test]
    fn panicking_cell_is_contained_and_typed() {
        let c = cell("boom", |_, _: Scale| -> u64 { panic!("injected failure") });
        let err = run_cell("figX", &c, 7, Scale::Smoke, &policy(2, None)).unwrap_err();
        assert_eq!(err.attempts, 3);
        assert_eq!(err.figure, "figX");
        assert_eq!(err.label, "boom");
        assert_eq!(err.seed, 7);
        match &err.cause {
            FailureCause::Panic(msg) => assert!(msg.contains("injected failure")),
            other => panic!("wrong cause: {other:?}"),
        }
    }

    #[test]
    fn flaky_cell_recovers_on_retry_with_same_seed() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static CALLS: AtomicU32 = AtomicU32::new(0);
        let c = cell("flaky", |seed, _: Scale| {
            if CALLS.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first attempt dies");
            }
            seed
        });
        let (part, _) = run_cell("figX", &c, 99, Scale::Smoke, &policy(1, None)).unwrap();
        // The retry saw the identical seed: determinism preserved.
        assert_eq!(*part.downcast::<u64>().unwrap(), 99);
        assert_eq!(CALLS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn over_deadline_cell_is_a_typed_failure() {
        let c = cell("slow", |_, _: Scale| {
            std::thread::sleep(Duration::from_millis(30));
            0u64
        });
        let err = run_cell("figX", &c, 1, Scale::Smoke, &policy(1, Some(5))).unwrap_err();
        match &err.cause {
            FailureCause::Deadline {
                budget_ms,
                elapsed_ms,
            } => {
                assert_eq!(*budget_ms, 5);
                assert!(*elapsed_ms >= 30, "elapsed {elapsed_ms}ms");
            }
            other => panic!("wrong cause: {other:?}"),
        }
    }

    #[test]
    fn per_cell_deadline_overrides_policy() {
        let c = cell("slow", |_, _: Scale| {
            std::thread::sleep(Duration::from_millis(20));
            0u64
        })
        .with_deadline(Duration::from_secs(30));
        // Policy deadline of 1ms would fail it; the cell override wins.
        assert!(run_cell("figX", &c, 1, Scale::Smoke, &policy(0, Some(1))).is_ok());
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = SupervisePolicy {
            retries: 10,
            deadline: None,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(70),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(70)); // capped
        assert_eq!(p.backoff(10), Duration::from_millis(70));
    }

    #[test]
    fn failure_report_renders_both_ways() {
        let rep = FailureReport {
            failures: vec![CellFailure {
                figure: "canary".into(),
                label: "panic".into(),
                seed: 3,
                attempts: 2,
                cause: FailureCause::Panic("boom \"quoted\"".into()),
            }],
        };
        let text = rep.to_string();
        assert!(text.contains("canary/panic"));
        let json = Json::parse(&rep.to_json()).unwrap();
        assert_eq!(json.get("failed_cells").unwrap().as_u64(), Some(1));
        let f = &json.get("failures").unwrap().as_arr().unwrap()[0];
        assert_eq!(f.get("cause").unwrap().as_str(), Some("panic"));
        assert_eq!(f.get("detail").unwrap().as_str(), Some("boom \"quoted\""));
    }
}
