//! An oracle vCPU-abstraction provider.
//!
//! The paper's Discussion (§6) situates vSched against paravirtualized
//! systems like XPV and CPS that export accurate vCPU information *from
//! the hypervisor*. This module plays that role in the simulator: it
//! installs ground-truth topology and capacity into a guest directly from
//! the machine's state — no probing, no probing cost, no probing lag — and
//! applies the same work-conservation relaxations rwc would.
//!
//! Comparing `oracle` against `enhanced CFS` (probed) quantifies what the
//! guest-side approach gives up relative to hypervisor cooperation: the
//! paper argues the gap is small and the deployability gain large.

use guestos::{CpuMask, PerceivedTopology};
use hostsim::Machine;

/// Builds the ground-truth perceived topology of a VM from its pinning
/// (exact for one-to-one pinned vCPUs; floating vCPUs fall back to the
/// flat view, as no static topology exists for them).
pub fn ground_truth_topology(m: &Machine, vm: usize) -> PerceivedTopology {
    let nr = m.vms[vm].nr_vcpus;
    let mut topo = PerceivedTopology::flat(nr);
    let thread_of: Vec<Option<usize>> = (0..nr)
        .map(|i| {
            let aff = &m.vcpus[m.gv(vm, i)].affinity;
            if aff.len() == 1 {
                Some(aff[0])
            } else {
                None
            }
        })
        .collect();
    for a in 0..nr {
        let Some(ta) = thread_of[a] else { continue };
        let mut stacked = CpuMask::single(a);
        let mut smt = CpuMask::single(a);
        let mut socket = CpuMask::single(a);
        #[allow(clippy::needless_range_loop)]
        for b in 0..nr {
            let Some(tb) = thread_of[b] else { continue };
            if b != a && tb == ta {
                stacked.set(b);
            }
            if m.spec.core_of(ta) == m.spec.core_of(tb) && tb != ta {
                smt.set(b);
            }
            if m.spec.socket_of(ta) == m.spec.socket_of(tb) {
                socket.set(b);
            }
        }
        if stacked.count() > 1 {
            topo.stacked[a] = stacked;
        }
        topo.smt[a] = smt;
        topo.socket[a] = socket;
    }
    topo
}

/// Ground-truth capacity of each vCPU: the hosting thread's current
/// capacity times the vCPU's fair share against co-runnable entities.
pub fn ground_truth_capacities(m: &Machine, vm: usize) -> Vec<f64> {
    let nr = m.vms[vm].nr_vcpus;
    (0..nr)
        .map(|i| {
            let gv = m.gv(vm, i);
            let aff = &m.vcpus[gv].affinity;
            if aff.len() != 1 {
                return 1024.0;
            }
            let th = aff[0];
            let my_weight = m.vcpus[gv].weight as f64;
            // Competing weight on the same thread: other vCPUs pinned there
            // plus host loads.
            let mut total = my_weight;
            for (ogv, v) in m.vcpus.iter().enumerate() {
                if ogv != gv && v.affinity.len() == 1 && v.affinity[0] == th {
                    total += v.weight as f64;
                }
            }
            total += m.host_load_weight_on(th) as f64;
            m.thread_cap(th) * my_weight / total
        })
        .collect()
}

/// Installs the oracle abstraction: exact topology, exact capacities, and
/// rwc-equivalent bans (one vCPU per stacking group; stragglers restricted
/// to best-effort tasks). The paravirtualized upper bound for enhanced CFS.
pub fn install(m: &mut Machine, vm: usize) {
    let topo = ground_truth_topology(m, vm);
    let caps = ground_truth_capacities(m, vm);
    let mean = caps.iter().sum::<f64>() / caps.len().max(1) as f64;
    let kern = &mut m.vms[vm].guest.kern;
    kern.install_topology(&topo);
    let mut min = f64::MAX;
    let mut max: f64 = 0.0;
    for (v, &cap) in caps.iter().enumerate() {
        kern.vcpus[v].cap_override = Some(cap.max(1.0));
        min = min.min(cap);
        max = max.max(cap);
    }
    kern.asym_capacity = max / min.max(1.0) > 1.3;
    // rwc with perfect information.
    for (v, &cap) in caps.iter().enumerate() {
        if topo.stacked[v].count() > 1 {
            let keep = topo.stacked[v].first().expect("non-empty group");
            if v != keep {
                kern.cgroup.ban(v);
            }
        }
        if cap < 0.1 * mean {
            kern.cgroup.restrict_to_idle(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::rcvm;

    #[test]
    fn oracle_topology_matches_rcvm_ground_truth() {
        let p = rcvm(1);
        let topo = ground_truth_topology(&p.machine, p.vm);
        // vCPUs 10 and 11 are stacked.
        assert!(topo.stacked[10].contains(11));
        // vCPUs 0 and 1 are SMT siblings (threads 0,1 share core 0).
        assert!(topo.smt[0].contains(1));
        // Everyone shares the single socket.
        assert_eq!(topo.socket[5].count(), 12);
    }

    #[test]
    fn oracle_capacities_reflect_contention() {
        let p = rcvm(1);
        let caps = ground_truth_capacities(&p.machine, p.vm);
        // hchl (weight 1024 vs load 256): ~0.8 of the thread capacity.
        assert!(caps[0] > caps[4], "hchl {} vs lchl {}", caps[0], caps[4]);
        // Stragglers are far below the mean.
        let mean = caps.iter().sum::<f64>() / caps.len() as f64;
        assert!(caps[8] < 0.2 * mean, "straggler {} mean {mean}", caps[8]);
    }

    #[test]
    fn oracle_install_bans_like_rwc() {
        let mut p = rcvm(1);
        install(&mut p.machine, p.vm);
        let cg = p.machine.vms[p.vm].guest.kern.cgroup;
        assert!(!cg.any.contains(11), "extra stacked vCPU banned");
        assert!(cg.normal.contains(10), "kept one of the stack");
        assert!(!cg.normal.contains(8), "straggler restricted");
        assert!(cg.any.contains(8), "straggler still takes best-effort");
        assert!(p.machine.vms[p.vm].guest.kern.asym_capacity);
    }
}
