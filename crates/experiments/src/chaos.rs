//! Chaos cell: adaptability under seed-driven fault injection.
//!
//! A fig16-style adaptability experiment driven by a
//! [`FaultPlan`](hostsim::FaultPlan) instead of a hand-written phase
//! script: an 8-vCPU pinned VM serves latency-sensitive requests while the
//! host misbehaves — stressor bursts, quota churn, re-pinning, vCPU
//! offline/online, DVFS steps, probe noise — on a replayable schedule.
//! Stock CFS is compared against full vSched with the resilience layer on
//! (confidence scoring + degraded mode). The question the cell answers:
//! when the vCPU abstraction lies, does vSched degrade *gracefully* —
//! tail latency no worse than vanilla CFS on the very same faulted host —
//! while its traced invariants keep holding?

use crate::common::{check_report, checked_collector, Mode, Scale};
use hostsim::{ChaosSpec, FaultPlan, HostSpec, ScenarioBuilder, VmSpec};
use metrics::Table;
use simcore::time::{MS, SEC};
use simcore::{SimRng, SimTime};
use std::fmt;
use vsched::{ResilCfg, VschedConfig};
use workloads::{work_ms, LatencyServer, LatencyServerCfg};

/// VM size for the chaos cell.
pub const NR_VCPUS: usize = 8;

/// Scheduler under test in one chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Stock CFS (the graceful-degradation baseline).
    Cfs,
    /// Full vSched with the resilience layer enabled.
    VschedResilient,
    /// vSched pinned in degraded mode (entry threshold above any reachable
    /// confidence): measures what degradation itself costs. The graceful-
    /// degradation gate compares this against CFS on the same faulted host.
    VschedForcedDegraded,
}

impl ChaosMode {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosMode::Cfs => "CFS",
            ChaosMode::VschedResilient => "vSched+resilience",
            ChaosMode::VschedForcedDegraded => "vSched degraded",
        }
    }
}

/// One chaos run's outcome.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// p99 end-to-end request latency (ms).
    pub p99_ms: f64,
    /// Median end-to-end request latency (ms).
    pub p50_ms: f64,
    /// Completed requests.
    pub completed: u64,
    /// Faults the plan injected.
    pub faults: usize,
    /// Degraded-mode episodes (including one still open at run end).
    pub degraded_episodes: u64,
    /// ivh pulls abandoned by the resilience watchdog.
    pub watchdog_abandons: u64,
    /// Trace events observed by the streaming checker.
    pub trace_events: u64,
    /// Invariant violations (must be 0).
    pub violations: u64,
    /// Law name of the first violation, if any — the seed shrinker's
    /// comparison key (not rendered in figure output).
    pub first_law: Option<String>,
}

/// Builds the fault schedule a chaos run at this scale uses.
pub fn plan_for(horizon_secs: u64, seed: u64) -> (ChaosSpec, FaultPlan) {
    let spec = ChaosSpec::for_pinned_vm(0, NR_VCPUS, horizon_secs * SEC);
    let plan = FaultPlan::generate(seed ^ 0xC0A5, &spec);
    (spec, plan)
}

/// Runs one chaos cell: same host, same faults, one scheduler.
pub fn run_mode(mode: ChaosMode, horizon_secs: u64, seed: u64) -> ChaosOutcome {
    let (_, plan) = plan_for(horizon_secs, seed);
    run_plan(mode, &plan, seed)
}

/// Runs one chaos cell under an explicit fault plan (the shrinker and
/// `suite --replay` drive arbitrary — typically subset — plans through the
/// very same scenario the seeded cell uses).
pub fn run_plan(mode: ChaosMode, plan: &FaultPlan, seed: u64) -> ChaosOutcome {
    let (b, vm) =
        ScenarioBuilder::new(HostSpec::flat(NR_VCPUS), seed).vm(VmSpec::pinned(NR_VCPUS, 0));
    let mut m = b.build();
    let spec = plan.spec().clone();
    plan.apply(&mut m);
    let shared = checked_collector();
    m.attach_trace(&shared);
    // Offered load ≈ 50% of nominal capacity: fault transients push the
    // faulted vCPUs past saturation, so scheduling quality shows in the
    // tail.
    let service = work_ms(0.5);
    let interarrival = service / 1024.0 / NR_VCPUS as f64 / 0.5;
    let cfg = LatencyServerCfg::new(NR_VCPUS, service, interarrival);
    let (wl, stats) = LatencyServer::new(cfg, SimRng::new(seed ^ 0xF1));
    m.set_workload(vm, Box::new(wl));
    match mode {
        ChaosMode::Cfs => {}
        ChaosMode::VschedResilient => Mode::install_custom(
            &mut m,
            vm,
            VschedConfig::full().with_resilience(ResilCfg::default()),
        ),
        ChaosMode::VschedForcedDegraded => Mode::install_custom(
            &mut m,
            vm,
            VschedConfig::full().with_resilience(ResilCfg {
                // Confidence lives in [0, 1]: entry at 1.5 is unreachable,
                // so the VM degrades at the first watchdog tick and never
                // exits.
                enter_confidence: 1.5,
                exit_confidence: 2.0,
                ..ResilCfg::default()
            }),
        ),
    }
    m.start();
    // Past the horizon plus the longest transient, so every reversal fires
    // and the host ends in its nominal configuration.
    m.run_until(SimTime::from_ns(
        spec.start.ns() + spec.horizon_ns + 600 * MS,
    ));
    let (episodes, abandons) = m.with_vm(vm, |g, _| {
        vsched::instance(g)
            .and_then(|vs| {
                vs.resil
                    .as_ref()
                    .map(|r| (r.episodes + u64::from(r.degraded()), r.watchdog_abandons))
            })
            .unwrap_or((0, 0))
    });
    let rep = check_report(&shared);
    let st = stats.borrow();
    ChaosOutcome {
        p99_ms: st.e2e.p99() as f64 / MS as f64,
        p50_ms: st.e2e.p50() as f64 / MS as f64,
        completed: st.completed,
        faults: plan.events.len(),
        degraded_episodes: episodes,
        watchdog_abandons: abandons,
        trace_events: rep.events,
        violations: rep.violations,
        first_law: rep.first_law().map(str::to_string),
    }
}

/// The rendered chaos cell.
pub struct Chaos {
    /// Stock CFS on the faulted host.
    pub cfs: ChaosOutcome,
    /// Resilient vSched on the same faulted host.
    pub vsched: ChaosOutcome,
}

impl fmt::Display for Chaos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Chaos: graceful degradation under fault injection ({} faults)",
            self.cfs.faults
        )?;
        let mut t = Table::new(&[
            "scheduler",
            "p50 ms",
            "p99 ms",
            "completed",
            "degraded",
            "abandons",
            "violations",
        ]);
        for (label, o) in [
            (ChaosMode::Cfs.label(), &self.cfs),
            (ChaosMode::VschedResilient.label(), &self.vsched),
        ] {
            t.row_owned(vec![
                label.to_string(),
                format!("{:.2}", o.p50_ms),
                format!("{:.2}", o.p99_ms),
                o.completed.to_string(),
                o.degraded_episodes.to_string(),
                o.watchdog_abandons.to_string(),
                o.violations.to_string(),
            ]);
        }
        write!(f, "{t}")?;
        write!(
            f,
            "\np99 ratio (vSched/CFS): {:.2}x",
            self.vsched.p99_ms / self.cfs.p99_ms.max(1e-9)
        )
    }
}

/// Runs the full cell pair.
pub fn run(seed: u64, scale: Scale) -> Chaos {
    let horizon = scale.secs(6, 20);
    Chaos {
        cfs: run_mode(ChaosMode::Cfs, horizon, seed),
        vsched: run_mode(ChaosMode::VschedResilient, horizon, seed),
    }
}
