//! Adversary cell: scheduler-gaming guests vs domain partitioning and
//! probe hardening.
//!
//! A 4-vCPU victim VM shares its first two host threads with a hostile
//! co-tenant VM driven by a seed-deterministic [`AttackPlan`]. The matrix
//! crosses two host policies — sampled proportional share (tick-based
//! charging, the classic gameable accounting) and a seL4-style static
//! [`DomainSchedule`](hostsim::DomainSchedule) — with three victim guest
//! configurations (stock CFS, stock vSched, hardened vSched with
//! resilience). Each cell answers two questions on the *same* host:
//!
//! * **steal**: how much above its fair share does a tick-dodging
//!   adversary run against a saturated victim? Positive under sampled
//!   proportional accounting; structurally near-zero once the host's
//!   domain schedule caps the Batch tenant's slice.
//! * **pollute**: what happens to the victim's request p99 when the
//!   adversary bursts interference exactly inside vSched's probe windows?
//!   Stock vSched learns false-low capacities and crowds its load; the
//!   hardened prober rejects the poisoned samples and rides degraded mode
//!   back to CFS-like placement.
//!
//! Both sub-runs stream every trace event through the PR 4 checker, so
//! the new domain/steal/rejection laws hold in every cell, and both are
//! replayable from an explicit plan (`suite --replay-adversary`) and
//! shrinkable (`suite --shrink-adversary`).

use crate::common::{check_report, checked_collector, Mode, Scale};
use hostsim::{DomainSchedule, HostSched, HostSpec, ScenarioBuilder, VmSpec};
use metrics::Table;
use simcore::time::{MS, SEC};
use simcore::{SimRng, SimTime};
use std::fmt;
use trace::PriorityClass;
use vsched::{ResilCfg, VschedConfig};
use workloads::{
    work_ms, Adversary as AdversaryWorkload, AttackKind, AttackPlan, AttackSpec, LatencyServer,
    LatencyServerCfg, Stressor,
};

/// Victim VM size (vCPUs, pinned 1:1 on threads `0..4`).
pub const NR_VCPUS: usize = 4;
/// Adversary VM size (vCPUs, pinned 1:1 on threads `0..2` — it contends
/// for *half* the victim's threads, so honest placement can route around
/// it but capacity-blind placement cannot).
pub const ADV_VCPUS: usize = 2;
/// Domain schedule period: Standard and Batch alternate 2 ms / 2 ms.
pub const DOMAIN_PERIOD_NS: u64 = 4 * MS;

/// Host scheduling policy under attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostPolicy {
    /// Proportional share with sampled (per-tick) charging — the
    /// accounting a tick-dodger games. (The repo's exact-settling
    /// proportional mode is dodge-proof by construction; the workloads
    /// crate's integration tests pin that separately.)
    Proportional,
    /// Static per-class time domains rotated round-robin: the Batch
    /// adversary is confined to its own slice regardless of behaviour.
    Domain,
}

impl HostPolicy {
    /// Display / cell-label name.
    pub fn label(&self) -> &'static str {
        match self {
            HostPolicy::Proportional => "prop",
            HostPolicy::Domain => "domain",
        }
    }

    /// The host scheduler this policy selects.
    pub fn sched(&self) -> HostSched {
        match self {
            HostPolicy::Proportional => HostSched::CreditSampled { tick_ns: MS },
            HostPolicy::Domain => HostSched::Domain(DomainSchedule::even_pair(
                PriorityClass::Standard,
                PriorityClass::Batch,
                DOMAIN_PERIOD_NS,
            )),
        }
    }
}

/// Victim guest configuration under attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestMode {
    /// Stock CFS: capacity-blind, so probe pollution cannot mislead it.
    Cfs,
    /// Stock vSched: trusts every probe sample.
    Vsched,
    /// vSched with hardened probing and the resilience layer: rejects
    /// window-targeted samples and degrades under sustained gaming.
    VschedHardened,
}

impl GuestMode {
    /// Display / cell-label name.
    pub fn label(&self) -> &'static str {
        match self {
            GuestMode::Cfs => "cfs",
            GuestMode::Vsched => "vsched",
            GuestMode::VschedHardened => "vsched-hardened",
        }
    }

    fn install(&self, m: &mut hostsim::Machine, vm: usize) {
        match self {
            GuestMode::Cfs => {}
            GuestMode::Vsched => Mode::install_custom(m, vm, VschedConfig::full()),
            GuestMode::VschedHardened => Mode::install_custom(
                m,
                vm,
                VschedConfig::full()
                    .with_hardened_probes()
                    .with_resilience(ResilCfg::default()),
            ),
        }
    }
}

/// One (policy, guest) cell's outcome: the dodge sub-run's steal
/// fraction plus the pollute sub-run's victim service quality.
#[derive(Debug, Clone)]
pub struct AdversaryOutcome {
    /// Adversary CPU share above its 50% fair share on the contended
    /// threads, dodge sub-run (0 = no steal).
    pub steal_frac: f64,
    /// Victim p99 end-to-end request latency (ms), pollute sub-run.
    pub p99_ms: f64,
    /// Victim median request latency (ms), pollute sub-run.
    pub p50_ms: f64,
    /// Victim requests completed, pollute sub-run.
    pub completed: u64,
    /// Probe samples the hardened prober rejected (0 unless hardened).
    pub rejected_samples: u64,
    /// Degraded-mode episodes (including one still open at run end).
    pub degraded_episodes: u64,
    /// Attack actions across both sub-runs' plans.
    pub attack_actions: usize,
    /// Trace events observed by the streaming checker, both sub-runs.
    pub trace_events: u64,
    /// Invariant violations (must be 0), both sub-runs.
    pub violations: u64,
    /// Law name of the first violation, if any — the shrinker's
    /// comparison key.
    pub first_law: Option<String>,
}

/// What the victim runs while under attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VictimKind {
    /// Always-runnable spinners saturating every vCPU: any adversary
    /// share above 50% of the contended threads is stolen, not idle-time
    /// harvest.
    Saturated,
    /// A latency server at ~35% offered load: the pollute sub-run's p99
    /// probe.
    Serving,
}

/// Builds the attack schedule a cell at this horizon uses; `kind`
/// restricts the plan to one archetype (`None` = all three, the combined
/// plan `--shrink-adversary` and `--replay-adversary` operate on).
pub fn plan_for(kind: Option<AttackKind>, horizon_secs: u64, seed: u64) -> AttackPlan {
    let mut spec = AttackSpec::for_vm(ADV_VCPUS, horizon_secs * SEC);
    if let Some(k) = kind {
        spec = spec.only(k);
    }
    AttackPlan::generate(seed ^ 0xAD5A, &spec)
}

/// One scenario: victim + adversary on the shared host, one policy, one
/// guest config, one explicit attack plan.
fn run_scenario(
    policy: HostPolicy,
    guest: GuestMode,
    plan: &AttackPlan,
    victim_kind: VictimKind,
    seed: u64,
) -> AdversaryOutcome {
    let horizon_ns = plan.spec().horizon_ns;
    let adv_vcpus = plan.spec().nr_vcpus;
    let (b, victim) =
        ScenarioBuilder::new(HostSpec::flat(NR_VCPUS), seed).vm(VmSpec::pinned(NR_VCPUS, 0));
    let (b, adv) = b.vm(VmSpec::pinned(adv_vcpus, 0));
    let mut m = b.build();
    m.set_vm_class(victim, PriorityClass::Standard);
    m.set_vm_class(adv, PriorityClass::Batch);
    m.set_host_sched(policy.sched())
        .expect("adversary cell host schedule is valid");
    let shared = checked_collector();
    m.attach_trace(&shared);
    let stats = match victim_kind {
        VictimKind::Saturated => {
            let (s, _stats) = Stressor::new(NR_VCPUS, work_ms(1.0));
            m.set_workload(victim, Box::new(s.pinned((0..NR_VCPUS).collect())));
            None
        }
        VictimKind::Serving => {
            // ~35% offered load: headroom even inside a half-machine
            // domain slice, so tail movement is scheduling quality, not
            // raw saturation.
            let service = work_ms(0.5);
            let interarrival = service / 1024.0 / NR_VCPUS as f64 / 0.35;
            let cfg = LatencyServerCfg::new(NR_VCPUS, service, interarrival);
            let (wl, stats) = LatencyServer::new(cfg, SimRng::new(seed ^ 0xF1));
            m.set_workload(victim, Box::new(wl));
            Some(stats)
        }
    };
    m.set_workload(adv, Box::new(AdversaryWorkload::new(plan)));
    guest.install(&mut m, victim);
    m.start();
    // Past the horizon so in-flight requests drain; the plan's last
    // action ends at the horizon, so the tail adds no adversary time.
    m.run_until(SimTime::from_ns(horizon_ns + 300 * MS));
    let adv_active: u64 = (0..adv_vcpus).map(|v| m.vcpu_active_ns(m.gv(adv, v))).sum();
    let share = adv_active as f64 / (adv_vcpus as u64 * horizon_ns) as f64;
    let (rejected, episodes) = m.with_vm(victim, |g, _| {
        vsched::instance(g)
            .map(|vs| {
                (
                    vs.vcap.rejected_samples,
                    vs.resil
                        .as_ref()
                        .map(|r| r.episodes + u64::from(r.degraded()))
                        .unwrap_or(0),
                )
            })
            .unwrap_or((0, 0))
    });
    let rep = check_report(&shared);
    let (p99_ms, p50_ms, completed) = match &stats {
        Some(st) => {
            let st = st.borrow();
            (
                st.e2e.p99() as f64 / MS as f64,
                st.e2e.p50() as f64 / MS as f64,
                st.completed,
            )
        }
        None => (0.0, 0.0, 0),
    };
    AdversaryOutcome {
        steal_frac: (share - 0.5).max(0.0),
        p99_ms,
        p50_ms,
        completed,
        rejected_samples: rejected,
        degraded_episodes: episodes,
        attack_actions: plan.events.len(),
        trace_events: rep.events,
        violations: rep.violations,
        first_law: rep.first_law().map(str::to_string),
    }
}

/// Dodge sub-run: tick-dodging adversary against a saturated victim; the
/// outcome's `steal_frac` is the headline number.
pub fn run_dodge(
    policy: HostPolicy,
    guest: GuestMode,
    horizon_secs: u64,
    seed: u64,
) -> AdversaryOutcome {
    let plan = plan_for(Some(AttackKind::DodgeRun), horizon_secs, seed);
    run_scenario(policy, guest, &plan, VictimKind::Saturated, seed)
}

/// Pollute sub-run: probe-window-targeted bursts against a serving
/// victim; the outcome's `p99_ms` is the headline number.
pub fn run_pollute(
    policy: HostPolicy,
    guest: GuestMode,
    horizon_secs: u64,
    seed: u64,
) -> AdversaryOutcome {
    let plan = plan_for(Some(AttackKind::ProbeBurst), horizon_secs, seed);
    run_scenario(policy, guest, &plan, VictimKind::Serving, seed)
}

/// Runs one full cell under an explicit combined plan (the shrinker and
/// `suite --replay-adversary` drive arbitrary — typically subset — plans
/// through the very same scenario the seeded cells use). The serving
/// victim keeps every probing and scheduling path live.
pub fn run_attack(
    policy: HostPolicy,
    guest: GuestMode,
    plan: &AttackPlan,
    seed: u64,
) -> AdversaryOutcome {
    run_scenario(policy, guest, plan, VictimKind::Serving, seed)
}

/// Runs one matrix cell: dodge sub-run for steal, pollute sub-run for
/// service quality, merged into one outcome.
pub fn run_cell(
    policy: HostPolicy,
    guest: GuestMode,
    horizon_secs: u64,
    seed: u64,
) -> AdversaryOutcome {
    let dodge = run_dodge(policy, guest, horizon_secs, seed);
    let pollute = run_pollute(policy, guest, horizon_secs, seed);
    AdversaryOutcome {
        steal_frac: dodge.steal_frac,
        p99_ms: pollute.p99_ms,
        p50_ms: pollute.p50_ms,
        completed: pollute.completed,
        rejected_samples: pollute.rejected_samples,
        degraded_episodes: pollute.degraded_episodes,
        attack_actions: dodge.attack_actions + pollute.attack_actions,
        trace_events: dodge.trace_events + pollute.trace_events,
        violations: dodge.violations + pollute.violations,
        first_law: dodge.first_law.or(pollute.first_law),
    }
}

/// The (policy, guest) axes in suite/cell order.
pub const POLICIES: [HostPolicy; 2] = [HostPolicy::Proportional, HostPolicy::Domain];
/// Guest configurations in suite/cell order.
pub const GUESTS: [GuestMode; 3] = [GuestMode::Cfs, GuestMode::Vsched, GuestMode::VschedHardened];

/// The rendered adversary matrix.
pub struct AdversaryMatrix {
    /// One row per (policy, guest), in [`POLICIES`] × [`GUESTS`] order.
    pub rows: Vec<(HostPolicy, GuestMode, AdversaryOutcome)>,
}

impl AdversaryMatrix {
    fn get(&self, p: HostPolicy, g: GuestMode) -> Option<&AdversaryOutcome> {
        self.rows
            .iter()
            .find(|(rp, rg, _)| *rp == p && *rg == g)
            .map(|(_, _, o)| o)
    }
}

impl fmt::Display for AdversaryMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Adversarial co-tenancy: dodge steal and probe pollution")?;
        let mut t = Table::new(&[
            "host",
            "guest",
            "steal",
            "p50 ms",
            "p99 ms",
            "completed",
            "rejected",
            "degraded",
            "violations",
        ]);
        for (p, g, o) in &self.rows {
            t.row_owned(vec![
                p.label().to_string(),
                g.label().to_string(),
                format!("{:.3}", o.steal_frac),
                format!("{:.2}", o.p50_ms),
                format!("{:.2}", o.p99_ms),
                o.completed.to_string(),
                o.rejected_samples.to_string(),
                o.degraded_episodes.to_string(),
                o.violations.to_string(),
            ]);
        }
        write!(f, "{t}")?;
        if let (Some(prop), Some(dom)) = (
            self.get(HostPolicy::Proportional, GuestMode::Cfs),
            self.get(HostPolicy::Domain, GuestMode::Cfs),
        ) {
            write!(
                f,
                "\ndodger steal (cfs guest): prop {:.3}, domain {:.3}",
                prop.steal_frac, dom.steal_frac
            )?;
        }
        if let (Some(soft), Some(hard)) = (
            self.get(HostPolicy::Proportional, GuestMode::Vsched),
            self.get(HostPolicy::Proportional, GuestMode::VschedHardened),
        ) {
            write!(
                f,
                "\npolluted p99, hardened/unhardened (prop): {:.2}x",
                hard.p99_ms / soft.p99_ms.max(1e-9)
            )?;
        }
        Ok(())
    }
}

/// Runs the full 2×3 matrix serially (the runner shards the same cells).
pub fn run(seed: u64, scale: Scale) -> AdversaryMatrix {
    let horizon = scale.secs(8, 30);
    let rows = POLICIES
        .iter()
        .flat_map(|&p| GUESTS.iter().map(move |&g| (p, g)))
        .map(|(p, g)| (p, g, run_cell(p, g, horizon, seed)))
        .collect();
    AdversaryMatrix { rows }
}
