//! Fleet cell: CFS guests vs vSched guests on the same churned cluster.
//!
//! The paper evaluates vSched on one host with a fixed sibling set; the
//! fleet cell asks what its probing buys at cluster scale. A small
//! overcommitted cluster (`fleet::Cluster`) replays an identical
//! seed-driven churn schedule — VM arrivals, departures, vertical resizes
//! — once with plain CFS guests and once with vSched guests, under each
//! registered placement policy. The probe-aware policy only differentiates
//! itself in the vSched rows: CFS guests report nominal capacity, so for
//! them it collapses to first-fit. Columns are the fleet SLO summary
//! (merged p50/p99, per-tenant p99 SLO violations, Jain's fairness, host
//! utilization) plus the trace checker's verdict on the placement laws
//! (overcommit cap respected, every admitted VM placed at most once).

use crate::common::Scale;
use ::fleet::{policy_by_name, Cluster, FleetSpec, GuestMode, POLICIES};
use metrics::Table;
use std::fmt;

/// Hosts in the fleet cell's cluster.
pub const HOSTS: usize = 4;

/// Hardware threads per host.
pub const THREADS_PER_HOST: usize = 4;

/// The cluster spec a fleet cell at this horizon uses: [`HOSTS`] flat
/// [`THREADS_PER_HOST`]-thread machines with a 1.5× overcommit cap and the
/// default heavy-tailed size mix, churned harder than the test default
/// (~10 arrivals per simulated second) so even smoke-scale cells see
/// placement pressure.
pub fn spec_for(horizon_secs: u64) -> FleetSpec {
    let mut spec = FleetSpec::small(HOSTS, THREADS_PER_HOST, horizon_secs);
    spec.arrival_mean_ns = 100 * simcore::time::MS;
    spec
}

/// One fleet cell's outcome: the SLO summary of a single
/// `(policy, guest mode)` cluster run, minus the per-tenant detail.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// VMs that entered the placement pipeline.
    pub admitted: u64,
    /// VMs a policy successfully sited.
    pub placed: u64,
    /// VMs rejected (no host fit under the overcommit cap).
    pub rejected: u64,
    /// Requests completed fleet-wide.
    pub completed: u64,
    /// Fleet-merged median end-to-end latency (ms).
    pub p50_ms: f64,
    /// Fleet-merged tail end-to-end latency (ms).
    pub p99_ms: f64,
    /// The single worst tenant's p99 (ms).
    pub worst_tenant_p99_ms: f64,
    /// Tenants whose own p99 busted the spec's SLO.
    pub slo_violations: usize,
    /// Tenants whose own p99 busted their *tier's* target
    /// (critical, standard, batch).
    pub tier_slo_violations: [usize; 3],
    /// Tenants with at least one completed request.
    pub measured_tenants: usize,
    /// Jain's fairness index over per-tenant completion rates.
    pub fairness: f64,
    /// Mean host utilization (0..=1).
    pub mean_util: f64,
    /// Trace events observed across fleet + per-host collectors.
    pub trace_events: u64,
    /// Invariant violations (must be 0).
    pub violations: u64,
}

/// Runs one policy's cell: the *same* `(spec, seed)` churn schedule
/// replayed twice — once with CFS guests, once with vSched guests — so the
/// two rows differ only in the guest scheduler (and, for the probe-aware
/// policy, in the capacity signal it feeds back to placement).
pub fn run_cell(
    policy: &'static str,
    horizon_secs: u64,
    seed: u64,
) -> (FleetOutcome, FleetOutcome) {
    let run_mode = |mode| {
        let mut c = Cluster::new(
            spec_for(horizon_secs),
            mode,
            policy_by_name(policy).expect("registered policy"),
            seed,
        );
        outcome(c.run())
    };
    (run_mode(GuestMode::Cfs), run_mode(GuestMode::Vsched))
}

fn outcome(s: ::fleet::SloSummary) -> FleetOutcome {
    FleetOutcome {
        admitted: s.admitted,
        placed: s.placed,
        rejected: s.rejected,
        completed: s.completed,
        p50_ms: s.p50_ms,
        p99_ms: s.p99_ms,
        worst_tenant_p99_ms: s.worst_tenant_p99_ms,
        slo_violations: s.slo_violations,
        tier_slo_violations: s.tier_slo_violations,
        measured_tenants: s.measured_tenants,
        fairness: s.fairness,
        mean_util: s.mean_util,
        trace_events: s.trace_events,
        violations: s.violations,
    }
}

/// The rendered fleet cell: one `(CFS, vSched)` outcome pair per policy,
/// in [`POLICIES`] order.
pub struct Fleet {
    /// `(policy, cfs, vsched)` rows.
    pub rows: Vec<(&'static str, FleetOutcome, FleetOutcome)>,
}

impl fmt::Display for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet: CFS vs vSched guests on a churned {HOSTS}-host cluster"
        )?;
        let mut t = Table::new(&[
            "policy",
            "guests",
            "placed",
            "rejected",
            "p50 ms",
            "p99 ms",
            "SLO viol",
            "tier viol c/s/b",
            "fairness",
            "util",
            "violations",
        ]);
        for (policy, cfs, vs) in &self.rows {
            for (mode, o) in [(GuestMode::Cfs, cfs), (GuestMode::Vsched, vs)] {
                t.row_owned(vec![
                    policy.to_string(),
                    mode.label().to_string(),
                    o.placed.to_string(),
                    o.rejected.to_string(),
                    format!("{:.2}", o.p50_ms),
                    format!("{:.2}", o.p99_ms),
                    format!("{}/{}", o.slo_violations, o.measured_tenants),
                    format!(
                        "{}/{}/{}",
                        o.tier_slo_violations[0],
                        o.tier_slo_violations[1],
                        o.tier_slo_violations[2]
                    ),
                    format!("{:.3}", o.fairness),
                    format!("{:.2}", o.mean_util),
                    o.violations.to_string(),
                ]);
            }
        }
        write!(f, "{t}")?;
        for (policy, cfs, vs) in &self.rows {
            write!(
                f,
                "\n{policy}: p99 ratio (vSched/CFS) {:.2}x",
                vs.p99_ms / cfs.p99_ms.max(1e-9)
            )?;
        }
        Ok(())
    }
}

/// Runs the full 3-policy cell grid serially (the legacy entry point; the
/// suite shards the same grid through the runner, one cell per policy).
pub fn run(seed: u64, scale: Scale) -> Fleet {
    let horizon = scale.secs(4, 16);
    let rows = POLICIES
        .iter()
        .map(|&policy| {
            let (cfs, vs) = run_cell(policy, horizon, seed);
            (policy, cfs, vs)
        })
        .collect();
    Fleet { rows }
}
