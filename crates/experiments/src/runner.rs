//! Deterministic parallel experiment runner.
//!
//! The figure/table drivers in this crate are embarrassingly parallel on
//! the inside: every figure is a reduction over independent *cells* — one
//! (benchmark, mode, knob) simulation each — that share no state beyond
//! the seed. This module shards the whole suite into those cells, runs
//! them on a `std::thread::scope` worker pool, and merges the parts back
//! in declaration order.
//!
//! # Determinism
//!
//! Results are bit-identical to the serial path and independent of worker
//! count or completion order, by construction:
//!
//! * Every cell's RNG seed is a stable hash of `(figure id, cell label,
//!   base seed)` — see [`cell_seed`]. Nothing about scheduling feeds the
//!   seed, so a cell computes the same result no matter when or where it
//!   runs. (The legacy `figXX::run` entry points instead thread one base
//!   seed through every cell; the runner's `--jobs 1` path is the serial
//!   baseline the parallel path must match.)
//! * Each cell builds its own `Machine`; the simulator is single-threaded
//!   per cell and shares nothing mutable across cells.
//! * Parts are merged by cell index, not completion order, and each
//!   figure's reduction is a pure function of its parts.

use crate::common::{Mode, Scale};
use crate::fig18_19::ProfileKind;
use crate::profiles::{hpvm, rcvm};
use crate::{
    chaos, fig02, fig03, fig04, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig18_19,
    fig20, fig21, table2, table3, table4,
};
use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use vsched::VschedConfig;
use workloads::{is_latency_bench, LATENCY_BENCHES, THROUGHPUT_BENCHES};

/// One cell's result, typed per figure and merged by the figure's reducer.
pub type Part = Box<dyn Any + Send>;

/// One independent unit of work: a single simulation.
pub struct CellSpec {
    /// Stable identity within the figure; feeds [`cell_seed`].
    pub label: String,
    run: Box<dyn Fn(u64, Scale) -> Part + Send + Sync>,
}

/// One figure or table: a set of cells plus the reduction that turns their
/// parts into the figure's rendered output.
pub struct Job {
    /// Figure id (`fig02` … `table4`); feeds [`cell_seed`] and `--filter`.
    pub name: &'static str,
    /// The cells, in merge order.
    pub cells: Vec<CellSpec>,
    reduce: Box<dyn Fn(Vec<Part>, Scale) -> String + Send + Sync>,
}

/// Builds a cell around a typed closure.
fn cell<T, F>(label: impl Into<String>, f: F) -> CellSpec
where
    T: Any + Send,
    F: Fn(u64, Scale) -> T + Send + Sync + 'static,
{
    CellSpec {
        label: label.into(),
        run: Box::new(move |seed, scale| Box::new(f(seed, scale)) as Part),
    }
}

/// Downcasts one part back to its cell's concrete type.
fn got<T: Any>(p: Part) -> T {
    *p.downcast::<T>()
        .expect("cell part carries the cell's type")
}

/// Stable per-cell seed: FNV-1a over `(figure, label)` finalized with the
/// base seed through a splitmix64 mix. Depends only on the cell's identity,
/// never on scheduling, worker count, or completion order.
pub fn cell_seed(base: u64, figure: &str, label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in figure
        .bytes()
        .chain(std::iter::once(0xff))
        .chain(label.bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h ^ base.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn job_fig02() -> Job {
    let mut cells = Vec::new();
    for &be in &[false, true] {
        for bench in fig02::BENCHES {
            for &l in &fig02::LATENCIES_MS {
                cells.push(cell(
                    format!("{bench}/be={be}/lat={l}"),
                    move |seed, scale| fig02::run_cell(bench, be, l, scale.secs(20, 120), seed),
                ));
            }
        }
    }
    Job {
        name: "fig02",
        cells,
        reduce: Box::new(|parts, _| {
            let cells = parts.into_iter().map(got::<fig02::Cell>).collect();
            fig02::Fig02 { cells }.to_string()
        }),
    }
}

fn job_fig03() -> Job {
    let cells = vec![
        cell("default", |seed, scale: Scale| {
            fig03::run_mode(false, scale.secs(5, 20), seed, None)
        }),
        cell("migrate", |seed, scale: Scale| {
            fig03::run_mode(true, scale.secs(5, 20), seed, None)
        }),
    ];
    Job {
        name: "fig03",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let default_mode = got::<fig03::ModeResult>(it.next().unwrap());
            let migration_mode = got::<fig03::ModeResult>(it.next().unwrap());
            fig03::Fig03 {
                default_mode,
                migration_mode,
            }
            .to_string()
        }),
    }
}

fn job_fig04() -> Job {
    // Per scenario kind, per benchmark: work-conserving then
    // non-work-conserving throughput, as six f64 parts per benchmark.
    let mut cells = Vec::new();
    for bench in fig04::BENCHES {
        for &exclude in &[false, true] {
            cells.push(cell(
                format!("straggler/{bench}/nwc={exclude}"),
                move |seed, scale| fig04::straggler_cell(bench, exclude, scale.secs(6, 25), seed),
            ));
        }
    }
    for &prio_inv in &[false, true] {
        for bench in fig04::BENCHES {
            for &exclude in &[false, true] {
                let kind = if prio_inv { "prio-inv" } else { "stacking" };
                cells.push(cell(
                    format!("{kind}/{bench}/nwc={exclude}"),
                    move |seed, scale| {
                        fig04::stacking_cell(bench, exclude, prio_inv, scale.secs(6, 25), seed)
                    },
                ));
            }
        }
    }
    Job {
        name: "fig04",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let mut pairs = |_kind: &str| -> Vec<fig04::Pair> {
                fig04::BENCHES
                    .iter()
                    .map(|&bench| fig04::Pair {
                        bench,
                        work_conserving: got::<f64>(it.next().unwrap()),
                        non_work_conserving: got::<f64>(it.next().unwrap()),
                    })
                    .collect()
            };
            let straggler = pairs("straggler");
            let stacking = pairs("stacking");
            let priority_inversion = pairs("prio-inv");
            fig04::Fig04 {
                straggler,
                stacking,
                priority_inversion,
            }
            .to_string()
        }),
    }
}

fn job_fig10() -> Job {
    let cells = vec![
        cell("tracking", |seed, scale: Scale| {
            fig10::run_capacity_tracking(seed, scale.secs(75, 150))
        }),
        cell("matrix", |seed, _scale| fig10::run_matrix(seed)),
    ];
    Job {
        name: "fig10",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let samples = got::<Vec<fig10::CapSample>>(it.next().unwrap());
            let matrix = got::<Vec<Vec<f64>>>(it.next().unwrap());
            let err: Vec<f64> = samples
                .iter()
                .filter(|s| s.actual > 0.0)
                .map(|s| (s.ema - s.actual).abs() / s.actual)
                .collect();
            let tracking_error = if err.is_empty() {
                0.0
            } else {
                err.iter().sum::<f64>() / err.len() as f64
            };
            fig10::Fig10 {
                samples,
                matrix,
                tracking_error,
            }
            .to_string()
        }),
    }
}

fn job_fig11() -> Job {
    let cells = vec![
        cell("asym/cfs", |seed, scale: Scale| {
            fig11::run_asym(false, scale.secs(10, 40), seed, None)
        }),
        cell("asym/vcap", |seed, scale: Scale| {
            fig11::run_asym(true, scale.secs(10, 40), seed, None)
        }),
        cell("sym/cfs", |seed, scale: Scale| {
            fig11::run_sym(false, scale.secs(10, 40), seed, None)
        }),
        cell("sym/vcap", |seed, scale: Scale| {
            fig11::run_sym(true, scale.secs(10, 40), seed, None)
        }),
    ];
    Job {
        name: "fig11",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let asym_cfs = got::<fig11::AsymResult>(it.next().unwrap());
            let asym_vcap = got::<fig11::AsymResult>(it.next().unwrap());
            let sym_cfs = got::<fig11::SymResult>(it.next().unwrap());
            let sym_vcap = got::<fig11::SymResult>(it.next().unwrap());
            fig11::Fig11 {
                asym_cfs,
                asym_vcap,
                sym_cfs,
                sym_vcap,
            }
            .to_string()
        }),
    }
}

fn job_fig12() -> Job {
    let mut cells = vec![
        cell("cores/cfs", |seed, scale: Scale| {
            fig12::run_underloaded(false, scale.secs(8, 40), seed)
        }),
        cell("cores/vtop", |seed, scale: Scale| {
            fig12::run_underloaded(true, scale.secs(8, 40), seed)
        }),
    ];
    for partner in ["nginx", "fio"] {
        for &vtop in &[false, true] {
            cells.push(cell(
                format!("mixed/{partner}/vtop={vtop}"),
                move |seed, scale| fig12::run_mixed(partner, vtop, scale.secs(8, 40), seed),
            ));
        }
    }
    Job {
        name: "fig12",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let cores_cfs = got::<fig12::ActiveCores>(it.next().unwrap());
            let cores_vtop = got::<fig12::ActiveCores>(it.next().unwrap());
            let mut mixed = Vec::new();
            for _ in 0..2 {
                let cfs = got::<fig12::Mixed>(it.next().unwrap());
                let vtop = got::<fig12::Mixed>(it.next().unwrap());
                mixed.push((cfs, vtop));
            }
            fig12::Fig12 {
                cores_cfs,
                cores_vtop,
                mixed,
            }
            .to_string()
        }),
    }
}

fn job_fig13() -> Job {
    let mut cells = Vec::new();
    for &name in &fig13::BENCHES {
        for &vtop in &[false, true] {
            cells.push(cell(format!("{name}/vtop={vtop}"), move |seed, scale| {
                fig13::run_cell(name, vtop, scale.secs(8, 40), seed)
            }));
        }
    }
    Job {
        name: "fig13",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let rows = fig13::BENCHES
                .iter()
                .map(|&name| {
                    let cfs = got::<fig13::LlcCell>(it.next().unwrap());
                    let vtop = got::<fig13::LlcCell>(it.next().unwrap());
                    (name, cfs, vtop)
                })
                .collect();
            fig13::Fig13 { rows }.to_string()
        }),
    }
}

fn job_fig14() -> Job {
    let mut cells = Vec::new();
    let mut keys = Vec::new();
    for &be in &[false, true] {
        for bench in fig14::BENCHES {
            for &bvs in &[false, true] {
                keys.push((bench, be, bvs));
                cells.push(cell(
                    format!("{bench}/be={be}/bvs={bvs}"),
                    move |seed, scale| {
                        let cfg = if bvs {
                            table3::bvs_cfg()
                        } else {
                            VschedConfig::probers_only()
                        };
                        fig14::run_cell(bench, be, cfg, scale.secs(15, 60), seed)
                            .p95_ns()
                            .unwrap_or(0)
                    },
                ));
            }
        }
    }
    Job {
        name: "fig14",
        cells,
        reduce: Box::new(move |parts, _| {
            let cells = keys
                .iter()
                .zip(parts)
                .map(|(&(bench, best_effort, bvs), p)| fig14::Cell {
                    bench,
                    best_effort,
                    bvs,
                    p95_ns: got::<u64>(p),
                })
                .collect();
            fig14::Fig14 { cells }.to_string()
        }),
    }
}

fn job_fig15() -> Job {
    let mut cells = Vec::new();
    for &bench in &fig15::BENCHES {
        for &t in &fig15::THREADS {
            for &ivh in &[false, true] {
                cells.push(cell(
                    format!("{bench}/t={t}/ivh={ivh}"),
                    move |seed, scale| fig15::run_cell(bench, t, ivh, scale.secs(8, 30), seed),
                ));
            }
        }
    }
    Job {
        name: "fig15",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let rows = fig15::BENCHES
                .iter()
                .map(|&bench| {
                    let cells = fig15::THREADS
                        .iter()
                        .map(|_| {
                            let without = got::<f64>(it.next().unwrap());
                            let with = got::<f64>(it.next().unwrap());
                            (without, with)
                        })
                        .collect();
                    (bench, cells)
                })
                .collect();
            fig15::Fig15 { rows }.to_string()
        }),
    }
}

fn job_fig16() -> Job {
    let cells = vec![
        cell("cfs", |seed, scale: Scale| {
            fig16::run_mode(Mode::Cfs, scale.secs(10, 30), seed)
        }),
        cell("vsched", |seed, scale: Scale| {
            fig16::run_mode(Mode::Vsched, scale.secs(10, 30), seed)
        }),
    ];
    Job {
        name: "fig16",
        cells,
        reduce: Box::new(|parts, scale| {
            let mut it = parts.into_iter();
            let cfs_series = got::<Vec<f64>>(it.next().unwrap());
            let vsched_series = got::<Vec<f64>>(it.next().unwrap());
            fig16::Fig16 {
                cfs_series,
                vsched_series,
                phase_secs: scale.secs(10, 30),
            }
            .to_string()
        }),
    }
}

fn job_fig17() -> Job {
    let cells = vec![
        cell("cfs", |seed, scale: Scale| {
            fig17::run_mode(Mode::Cfs, scale.secs(10, 80), seed)
        }),
        cell("vsched", |seed, scale: Scale| {
            fig17::run_mode(Mode::Vsched, scale.secs(10, 80), seed)
        }),
    ];
    Job {
        name: "fig17",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let cfs = got::<fig17::ModeOutcome>(it.next().unwrap());
            let vsched = got::<fig17::ModeOutcome>(it.next().unwrap());
            fig17::Fig17 { cfs, vsched }.to_string()
        }),
    }
}

/// Every suite workload, in the order `fig18_19::run` uses.
fn overall_benches() -> Vec<&'static str> {
    THROUGHPUT_BENCHES
        .iter()
        .chain(LATENCY_BENCHES.iter())
        .copied()
        .collect()
}

fn job_overall(name: &'static str, kind: ProfileKind) -> Job {
    let mut cells = Vec::new();
    for bench in overall_benches() {
        for mode in [Mode::Cfs, Mode::EnhancedCfs, Mode::Vsched] {
            cells.push(cell(
                format!("{bench}/{}", mode.label()),
                move |seed, scale| fig18_19::run_cell(kind, bench, mode, scale.secs(6, 25), seed),
            ));
        }
    }
    Job {
        name,
        cells,
        reduce: Box::new(move |parts, _| {
            let mut it = parts.into_iter();
            let rows = overall_benches()
                .into_iter()
                .map(|bench| {
                    let cfs = got::<f64>(it.next().unwrap());
                    let ecfs = got::<f64>(it.next().unwrap());
                    let vs = got::<f64>(it.next().unwrap());
                    fig18_19::Row {
                        bench,
                        latency: is_latency_bench(bench),
                        values: (cfs, ecfs, vs),
                    }
                })
                .collect();
            fig18_19::Overall {
                profile: kind,
                rows,
            }
            .to_string()
        }),
    }
}

fn job_fig20() -> Job {
    let mut cells = Vec::new();
    for kind in [ProfileKind::Hpvm, ProfileKind::Rcvm] {
        for &bench in &fig20::BENCHES {
            for mode in [Mode::Cfs, Mode::Vsched] {
                cells.push(cell(
                    format!("{kind:?}/{bench}/{}", mode.label()),
                    move |seed, scale| fig20::run_cell(kind, bench, mode, scale.secs(6, 25), seed),
                ));
            }
        }
    }
    Job {
        name: "fig20",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let mut rows = Vec::new();
            for kind in [ProfileKind::Hpvm, ProfileKind::Rcvm] {
                for &bench in &fig20::BENCHES {
                    let cfs = got::<fig20::Cost>(it.next().unwrap());
                    let vs = got::<fig20::Cost>(it.next().unwrap());
                    rows.push((kind, bench, cfs, vs));
                }
            }
            fig20::Fig20 { rows }.to_string()
        }),
    }
}

fn job_fig21() -> Job {
    let mut cells = Vec::new();
    for &bench in &fig21::BENCHES {
        for mode in [Mode::Cfs, Mode::Vsched] {
            cells.push(cell(
                format!("{bench}/{}", mode.label()),
                move |seed, scale| fig21::run_cell(bench, mode, scale.secs(6, 25), seed),
            ));
        }
    }
    Job {
        name: "fig21",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let rows = fig21::BENCHES
                .iter()
                .map(|&bench| {
                    let cfs = got::<f64>(it.next().unwrap());
                    let vs = got::<f64>(it.next().unwrap());
                    (bench, 1.0 - vs / cfs.max(1e-12))
                })
                .collect();
            fig21::Fig21 { rows }.to_string()
        }),
    }
}

fn job_table2() -> Job {
    let cells = vec![
        cell("rcvm", |seed, scale: Scale| {
            table2::measure(rcvm(seed), scale.secs(12, 30))
        }),
        cell("hpvm", |seed, scale: Scale| {
            table2::measure(hpvm(seed), scale.secs(12, 30))
        }),
    ];
    Job {
        name: "table2",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let (rcvm_full_ns, rcvm_validate_ns) = got::<(u64, u64)>(it.next().unwrap());
            let (hpvm_full_ns, hpvm_validate_ns) = got::<(u64, u64)>(it.next().unwrap());
            table2::Table2 {
                rcvm_full_ns,
                rcvm_validate_ns,
                hpvm_full_ns,
                hpvm_validate_ns,
            }
            .to_string()
        }),
    }
}

fn job_table3() -> Job {
    fn breakdown(be: bool, cfg: VschedConfig, seed: u64, scale: Scale) -> table3::Breakdown {
        let h = fig14::run_cell("masstree", be, cfg, scale.secs(15, 60), seed);
        table3::Breakdown::from_handle(&h)
    }
    let cells = vec![
        cell("no-be/no-bvs", |seed, scale: Scale| {
            breakdown(false, VschedConfig::probers_only(), seed, scale)
        }),
        cell("no-be/bvs", |seed, scale: Scale| {
            breakdown(false, table3::bvs_cfg(), seed, scale)
        }),
        cell("be/no-bvs", |seed, scale: Scale| {
            breakdown(true, VschedConfig::probers_only(), seed, scale)
        }),
        cell("be/bvs-no-state-check", |seed, scale: Scale| {
            breakdown(
                true,
                table3::bvs_cfg().without_bvs_state_check(),
                seed,
                scale,
            )
        }),
        cell("be/bvs", |seed, scale: Scale| {
            breakdown(true, table3::bvs_cfg(), seed, scale)
        }),
    ];
    Job {
        name: "table3",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let mut next = || got::<table3::Breakdown>(it.next().unwrap());
            let no_be = (next(), next());
            let with_be = (next(), next(), next());
            table3::Table3 { no_be, with_be }.to_string()
        }),
    }
}

fn job_table4() -> Job {
    let mut cells = Vec::new();
    for &t in &table4::THREADS {
        for &prewake in &[false, true] {
            cells.push(cell(
                format!("t={t}/aware={prewake}"),
                move |seed, scale| table4::run_cell(t, prewake, scale.secs(8, 30), seed),
            ));
        }
    }
    Job {
        name: "table4",
        cells,
        reduce: Box::new(|parts, _| {
            type Cell4 = (f64, (u64, u64, u64));
            let mut it = parts.into_iter();
            let mut cells = Vec::new();
            let mut aware_stats = (0, 0, 0);
            for &t in &table4::THREADS {
                let (unaware, _) = got::<Cell4>(it.next().unwrap());
                let (aware, st) = got::<Cell4>(it.next().unwrap());
                if t == 1 {
                    aware_stats = st;
                }
                cells.push((unaware, aware));
            }
            table4::Table4 { cells, aware_stats }.to_string()
        }),
    }
}

fn job_chaos() -> Job {
    let cells = vec![
        cell("cfs", |seed, scale: Scale| {
            chaos::run_mode(chaos::ChaosMode::Cfs, scale.secs(6, 20), seed)
        }),
        cell("vsched-resilient", |seed, scale: Scale| {
            chaos::run_mode(chaos::ChaosMode::VschedResilient, scale.secs(6, 20), seed)
        }),
    ];
    Job {
        name: "chaos",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let cfs = got::<chaos::ChaosOutcome>(it.next().unwrap());
            let vsched = got::<chaos::ChaosOutcome>(it.next().unwrap());
            chaos::Chaos { cfs, vsched }.to_string()
        }),
    }
}

/// All jobs in suite output order.
pub fn registry() -> Vec<Job> {
    vec![
        job_fig02(),
        job_fig03(),
        job_fig04(),
        job_fig10(),
        job_fig11(),
        job_fig12(),
        job_fig13(),
        job_fig14(),
        job_fig15(),
        job_fig16(),
        job_fig17(),
        job_overall("fig18", ProfileKind::Rcvm),
        job_overall("fig19", ProfileKind::Hpvm),
        job_fig20(),
        job_fig21(),
        job_table2(),
        job_table3(),
        job_table4(),
        job_chaos(),
    ]
}

/// How to run the suite.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Worker threads; `0` sizes the pool by `available_parallelism`.
    pub jobs: usize,
    /// Substring filter on job names (`None` = all).
    pub filter: Option<String>,
    /// Experiment scale.
    pub scale: Scale,
    /// Base seed mixed into every cell seed.
    pub seed: u64,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            jobs: 0,
            filter: None,
            scale: Scale::Quick,
            seed: 42,
        }
    }
}

/// One job's merged output plus its summed cell compute time.
pub struct JobReport {
    /// Job name.
    pub name: &'static str,
    /// Number of cells the job sharded into.
    pub cells: usize,
    /// The figure's rendered output.
    pub output: String,
    /// Total cell compute (CPU) seconds, summed across workers.
    pub cpu_secs: f64,
}

/// The whole suite's outcome.
pub struct SuiteResult {
    /// Per-job reports, in registry order.
    pub reports: Vec<JobReport>,
    /// Worker threads actually used.
    pub workers: usize,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
}

/// Resolves `--jobs 0` to the machine's parallelism.
pub fn resolve_workers(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs every registry job whose name contains the filter.
pub fn run_suite(opts: &SuiteOptions) -> SuiteResult {
    let jobs: Vec<Job> = registry()
        .into_iter()
        .filter(|j| opts.filter.as_deref().is_none_or(|f| j.name.contains(f)))
        .collect();
    run_jobs(jobs, opts)
}

struct Item {
    job: usize,
    cell: usize,
    seed: u64,
}

fn run_jobs(jobs: Vec<Job>, opts: &SuiteOptions) -> SuiteResult {
    let t0 = Instant::now();
    let workers = resolve_workers(opts.jobs);

    // Flatten into a work list; seeds are precomputed from cell identity so
    // nothing downstream depends on which worker runs what.
    let items: Vec<Item> = jobs
        .iter()
        .enumerate()
        .flat_map(|(ji, j)| {
            j.cells.iter().enumerate().map(move |(ci, c)| Item {
                job: ji,
                cell: ci,
                seed: cell_seed(opts.seed, j.name, &c.label),
            })
        })
        .collect();

    let slots: Vec<Mutex<Option<(Part, f64)>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let n_threads = workers.min(items.len()).max(1);
    std::thread::scope(|s| {
        for _ in 0..n_threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let it = &items[i];
                let c0 = Instant::now();
                let part = (jobs[it.job].cells[it.cell].run)(it.seed, opts.scale);
                *slots[i].lock().unwrap() = Some((part, c0.elapsed().as_secs_f64()));
            });
        }
    });

    // Merge strictly in declaration order: `items` is sorted by (job, cell),
    // so pushing in item order rebuilds each job's parts in cell order.
    let mut per_job: Vec<Vec<Part>> = jobs.iter().map(|_| Vec::new()).collect();
    let mut per_job_secs = vec![0.0f64; jobs.len()];
    for (it, slot) in items.iter().zip(slots) {
        let (part, secs) = slot.into_inner().unwrap().expect("every cell ran");
        per_job[it.job].push(part);
        per_job_secs[it.job] += secs;
    }

    let mut reports = Vec::new();
    let mut parts_iter = per_job.into_iter();
    for (ji, job) in jobs.into_iter().enumerate() {
        let parts = parts_iter.next().unwrap();
        let cells = parts.len();
        let output = (job.reduce)(parts, opts.scale);
        reports.push(JobReport {
            name: job.name,
            cells,
            output,
            cpu_secs: per_job_secs[ji],
        });
    }
    SuiteResult {
        reports,
        workers: n_threads,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seed_is_stable_and_distinct() {
        let a = cell_seed(42, "fig02", "silo/be=false/lat=2");
        assert_eq!(a, cell_seed(42, "fig02", "silo/be=false/lat=2"));
        assert_ne!(a, cell_seed(42, "fig02", "silo/be=false/lat=4"));
        assert_ne!(a, cell_seed(42, "fig03", "silo/be=false/lat=2"));
        assert_ne!(a, cell_seed(43, "fig02", "silo/be=false/lat=2"));
    }

    #[test]
    fn registry_covers_the_full_suite() {
        let names: Vec<&str> = registry().iter().map(|j| j.name).collect();
        assert_eq!(names.len(), 19);
        for want in [
            "fig02", "fig15", "fig18", "fig19", "table2", "table4", "chaos",
        ] {
            assert!(names.contains(&want), "missing {want}");
        }
        // Every job decomposes into at least two independent cells except
        // none — sharding is the whole point.
        for j in registry() {
            assert!(j.cells.len() >= 2, "{} has {} cells", j.name, j.cells.len());
        }
    }

    #[test]
    fn labels_are_unique_within_a_job() {
        for j in registry() {
            let mut labels: Vec<&str> = j.cells.iter().map(|c| c.label.as_str()).collect();
            labels.sort_unstable();
            let before = labels.len();
            labels.dedup();
            assert_eq!(before, labels.len(), "duplicate cell label in {}", j.name);
        }
    }
}
