//! Deterministic parallel experiment runner.
//!
//! The figure/table drivers in this crate are embarrassingly parallel on
//! the inside: every figure is a reduction over independent *cells* — one
//! (benchmark, mode, knob) simulation each — that share no state beyond
//! the seed. This module shards the whole suite into those cells, runs
//! them on a `std::thread::scope` worker pool, and merges the parts back
//! in declaration order.
//!
//! # Determinism
//!
//! Results are bit-identical to the serial path and independent of worker
//! count or completion order, by construction:
//!
//! * Every cell's RNG seed is a stable hash of `(figure id, cell label,
//!   base seed)` — see [`cell_seed`]. Nothing about scheduling feeds the
//!   seed, so a cell computes the same result no matter when or where it
//!   runs. (The legacy `figXX::run` entry points instead thread one base
//!   seed through every cell; the runner's `--jobs 1` path is the serial
//!   baseline the parallel path must match.)
//! * Each cell builds its own `Machine`; the simulator is single-threaded
//!   per cell and shares nothing mutable across cells.
//! * Parts are merged by cell index, not completion order, and each
//!   figure's reduction is a pure function of its parts.

use crate::checkpoint::{Checkpoint, CkptKey};
use crate::common::{Mode, Scale};
use crate::fig18_19::ProfileKind;
use crate::profiles::{hpvm, rcvm};
use crate::supervise::{self, CellFailure, FailureReport, SupervisePolicy};
use crate::{
    adversary, chaos, fig02, fig03, fig04, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17,
    fig18_19, fig20, fig21, fleet_chaos, replay, table2, table3, table4, vcache,
};
use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vsched::VschedConfig;
use workloads::{is_latency_bench, LATENCY_BENCHES, THROUGHPUT_BENCHES};

/// One cell's result, typed per figure and merged by the figure's reducer.
pub type Part = Box<dyn Any + Send>;

/// One independent unit of work: a single simulation.
pub struct CellSpec {
    /// Stable identity within the figure; feeds [`cell_seed`].
    pub label: String,
    /// Per-cell wall-clock budget; overrides the suite-wide deadline.
    pub deadline: Option<Duration>,
    run: Box<dyn Fn(u64, Scale) -> Part + Send + Sync>,
}

impl CellSpec {
    /// Runs the cell's closure (the supervisor wraps this in
    /// `catch_unwind` and timing).
    pub(crate) fn execute(&self, seed: u64, scale: Scale) -> Part {
        (self.run)(seed, scale)
    }

    /// Gives this cell its own wall-clock budget.
    pub(crate) fn with_deadline(mut self, budget: Duration) -> CellSpec {
        self.deadline = Some(budget);
        self
    }
}

/// One figure or table: a set of cells plus the reduction that turns their
/// parts into the figure's rendered output.
pub struct Job {
    /// Figure id (`fig02` … `table4`); feeds [`cell_seed`] and `--filter`.
    pub name: &'static str,
    /// One-line description (`suite --list`).
    pub desc: &'static str,
    /// The cells, in merge order.
    pub cells: Vec<CellSpec>,
    reduce: Box<dyn Fn(Vec<Part>, Scale) -> String + Send + Sync>,
}

/// Builds a cell around a typed closure.
pub(crate) fn cell<T, F>(label: impl Into<String>, f: F) -> CellSpec
where
    T: Any + Send,
    F: Fn(u64, Scale) -> T + Send + Sync + 'static,
{
    CellSpec {
        label: label.into(),
        deadline: None,
        run: Box::new(move |seed, scale| Box::new(f(seed, scale)) as Part),
    }
}

/// Downcasts one part back to its cell's concrete type.
fn got<T: Any>(p: Part) -> T {
    *p.downcast::<T>()
        .expect("cell part carries the cell's type")
}

/// Stable per-cell seed: FNV-1a over `(figure, label)` finalized with the
/// base seed through a splitmix64 mix. Depends only on the cell's identity,
/// never on scheduling, worker count, or completion order.
pub fn cell_seed(base: u64, figure: &str, label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in figure
        .bytes()
        .chain(std::iter::once(0xff))
        .chain(label.bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h ^ base.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn job_fig02() -> Job {
    let mut cells = Vec::new();
    for &be in &[false, true] {
        for bench in fig02::BENCHES {
            for &l in &fig02::LATENCIES_MS {
                cells.push(cell(
                    format!("{bench}/be={be}/lat={l}"),
                    move |seed, scale| fig02::run_cell(bench, be, l, scale.secs(20, 120), seed),
                ));
            }
        }
    }
    Job {
        name: "fig02",
        desc: "vCPU latency vs request latency for latency-sensitive workloads",
        cells,
        reduce: Box::new(|parts, _| {
            let cells = parts.into_iter().map(got::<fig02::Cell>).collect();
            fig02::Fig02 { cells }.to_string()
        }),
    }
}

fn job_fig03() -> Job {
    let cells = vec![
        cell("default", |seed, scale: Scale| {
            fig03::run_mode(false, scale.secs(5, 20), seed, None)
        }),
        cell("migrate", |seed, scale: Scale| {
            fig03::run_mode(true, scale.secs(5, 20), seed, None)
        }),
    ];
    Job {
        name: "fig03",
        desc: "the stalled running task, with and without proactive migration",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let default_mode = got::<fig03::ModeResult>(it.next().unwrap());
            let migration_mode = got::<fig03::ModeResult>(it.next().unwrap());
            fig03::Fig03 {
                default_mode,
                migration_mode,
            }
            .to_string()
        }),
    }
}

fn job_fig04() -> Job {
    // Per scenario kind, per benchmark: work-conserving then
    // non-work-conserving throughput, as six f64 parts per benchmark.
    let mut cells = Vec::new();
    for bench in fig04::BENCHES {
        for &exclude in &[false, true] {
            cells.push(cell(
                format!("straggler/{bench}/nwc={exclude}"),
                move |seed, scale| fig04::straggler_cell(bench, exclude, scale.secs(6, 25), seed),
            ));
        }
    }
    for &prio_inv in &[false, true] {
        for bench in fig04::BENCHES {
            for &exclude in &[false, true] {
                let kind = if prio_inv { "prio-inv" } else { "stacking" };
                cells.push(cell(
                    format!("{kind}/{bench}/nwc={exclude}"),
                    move |seed, scale| {
                        fig04::stacking_cell(bench, exclude, prio_inv, scale.secs(6, 25), seed)
                    },
                ));
            }
        }
    }
    Job {
        name: "fig04",
        desc: "deficient work conservation: stragglers, stacking, priority inversion",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let mut pairs = |_kind: &str| -> Vec<fig04::Pair> {
                fig04::BENCHES
                    .iter()
                    .map(|&bench| fig04::Pair {
                        bench,
                        work_conserving: got::<f64>(it.next().unwrap()),
                        non_work_conserving: got::<f64>(it.next().unwrap()),
                    })
                    .collect()
            };
            let straggler = pairs("straggler");
            let stacking = pairs("stacking");
            let priority_inversion = pairs("prio-inv");
            fig04::Fig04 {
                straggler,
                stacking,
                priority_inversion,
            }
            .to_string()
        }),
    }
}

fn job_fig10() -> Job {
    let cells = vec![
        cell("tracking", |seed, scale: Scale| {
            fig10::run_capacity_tracking(seed, scale.secs(75, 150))
        }),
        cell("matrix", |seed, _scale| fig10::run_matrix(seed)),
    ];
    Job {
        name: "fig10",
        desc: "accuracy of vcap capacity tracking and the vtop latency matrix",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let samples = got::<Vec<fig10::CapSample>>(it.next().unwrap());
            let matrix = got::<Vec<Vec<f64>>>(it.next().unwrap());
            let err: Vec<f64> = samples
                .iter()
                .filter(|s| s.actual > 0.0)
                .map(|s| (s.ema - s.actual).abs() / s.actual)
                .collect();
            let tracking_error = if err.is_empty() {
                0.0
            } else {
                err.iter().sum::<f64>() / err.len() as f64
            };
            fig10::Fig10 {
                samples,
                matrix,
                tracking_error,
            }
            .to_string()
        }),
    }
}

fn job_fig11() -> Job {
    let cells = vec![
        cell("asym/cfs", |seed, scale: Scale| {
            fig11::run_asym(false, scale.secs(10, 40), seed, None)
        }),
        cell("asym/vcap", |seed, scale: Scale| {
            fig11::run_asym(true, scale.secs(10, 40), seed, None)
        }),
        cell("sym/cfs", |seed, scale: Scale| {
            fig11::run_sym(false, scale.secs(10, 40), seed, None)
        }),
        cell("sym/vcap", |seed, scale: Scale| {
            fig11::run_sym(true, scale.secs(10, 40), seed, None)
        }),
    ];
    Job {
        name: "fig11",
        desc: "impact of accurate vCPU capacity (vcap) on asym/sym hosts",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let asym_cfs = got::<fig11::AsymResult>(it.next().unwrap());
            let asym_vcap = got::<fig11::AsymResult>(it.next().unwrap());
            let sym_cfs = got::<fig11::SymResult>(it.next().unwrap());
            let sym_vcap = got::<fig11::SymResult>(it.next().unwrap());
            fig11::Fig11 {
                asym_cfs,
                asym_vcap,
                sym_cfs,
                sym_vcap,
            }
            .to_string()
        }),
    }
}

fn job_fig12() -> Job {
    let mut cells = vec![
        cell("cores/cfs", |seed, scale: Scale| {
            fig12::run_underloaded(false, scale.secs(8, 40), seed)
        }),
        cell("cores/vtop", |seed, scale: Scale| {
            fig12::run_underloaded(true, scale.secs(8, 40), seed)
        }),
    ];
    for partner in ["nginx", "fio"] {
        for &vtop in &[false, true] {
            cells.push(cell(
                format!("mixed/{partner}/vtop={vtop}"),
                move |seed, scale| fig12::run_mixed(partner, vtop, scale.secs(8, 40), seed),
            ));
        }
    }
    Job {
        name: "fig12",
        desc: "SMT-aware scheduling with vtop on pinned sibling pairs",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let cores_cfs = got::<fig12::ActiveCores>(it.next().unwrap());
            let cores_vtop = got::<fig12::ActiveCores>(it.next().unwrap());
            let mut mixed = Vec::new();
            for _ in 0..2 {
                let cfs = got::<fig12::Mixed>(it.next().unwrap());
                let vtop = got::<fig12::Mixed>(it.next().unwrap());
                mixed.push((cfs, vtop));
            }
            fig12::Fig12 {
                cores_cfs,
                cores_vtop,
                mixed,
            }
            .to_string()
        }),
    }
}

fn job_fig13() -> Job {
    let mut cells = Vec::new();
    for &name in &fig13::BENCHES {
        for &vtop in &[false, true] {
            cells.push(cell(format!("{name}/vtop={vtop}"), move |seed, scale| {
                fig13::run_cell(name, vtop, scale.secs(8, 40), seed)
            }));
        }
    }
    Job {
        name: "fig13",
        desc: "LLC-aware co-location with vtop across two sockets",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let rows = fig13::BENCHES
                .iter()
                .map(|&name| {
                    let cfs = got::<fig13::LlcCell>(it.next().unwrap());
                    let vtop = got::<fig13::LlcCell>(it.next().unwrap());
                    (name, cfs, vtop)
                })
                .collect();
            fig13::Fig13 { rows }.to_string()
        }),
    }
}

fn job_fig14() -> Job {
    let mut cells = Vec::new();
    let mut keys = Vec::new();
    for &be in &[false, true] {
        for bench in fig14::BENCHES {
            for &bvs in &[false, true] {
                keys.push((bench, be, bvs));
                cells.push(cell(
                    format!("{bench}/be={be}/bvs={bvs}"),
                    move |seed, scale| {
                        let cfg = if bvs {
                            table3::bvs_cfg()
                        } else {
                            VschedConfig::probers_only()
                        };
                        fig14::run_cell(bench, be, cfg, scale.secs(15, 60), seed)
                            .p95_ns()
                            .unwrap_or(0)
                    },
                ));
            }
        }
    }
    Job {
        name: "fig14",
        desc: "p95 latency reduction with boosted vCPU scheduling (bvs)",
        cells,
        reduce: Box::new(move |parts, _| {
            let cells = keys
                .iter()
                .zip(parts)
                .map(|(&(bench, best_effort, bvs), p)| fig14::Cell {
                    bench,
                    best_effort,
                    bvs,
                    p95_ns: got::<u64>(p),
                })
                .collect();
            fig14::Fig14 { cells }.to_string()
        }),
    }
}

fn job_fig15() -> Job {
    let mut cells = Vec::new();
    for &bench in &fig15::BENCHES {
        for &t in &fig15::THREADS {
            for &ivh in &[false, true] {
                cells.push(cell(
                    format!("{bench}/t={t}/ivh={ivh}"),
                    move |seed, scale| fig15::run_cell(bench, t, ivh, scale.secs(8, 30), seed),
                ));
            }
        }
    }
    Job {
        name: "fig15",
        desc: "throughput gain from idle vCPU harvesting (ivh)",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let rows = fig15::BENCHES
                .iter()
                .map(|&bench| {
                    let cells = fig15::THREADS
                        .iter()
                        .map(|_| {
                            let without = got::<f64>(it.next().unwrap());
                            let with = got::<f64>(it.next().unwrap());
                            (without, with)
                        })
                        .collect();
                    (bench, cells)
                })
                .collect();
            fig15::Fig15 { rows }.to_string()
        }),
    }
}

fn job_fig16() -> Job {
    let cells = vec![
        cell("cfs", |seed, scale: Scale| {
            fig16::run_mode(Mode::Cfs, scale.secs(10, 30), seed)
        }),
        cell("vsched", |seed, scale: Scale| {
            fig16::run_mode(Mode::Vsched, scale.secs(10, 30), seed)
        }),
    ];
    Job {
        name: "fig16",
        desc: "adaptability of vSched as the host reconfigures vCPUs",
        cells,
        reduce: Box::new(|parts, scale| {
            let mut it = parts.into_iter();
            let cfs_series = got::<Vec<f64>>(it.next().unwrap());
            let vsched_series = got::<Vec<f64>>(it.next().unwrap());
            fig16::Fig16 {
                cfs_series,
                vsched_series,
                phase_secs: scale.secs(10, 30),
            }
            .to_string()
        }),
    }
}

fn job_fig17() -> Job {
    let cells = vec![
        cell("cfs", |seed, scale: Scale| {
            fig17::run_mode(Mode::Cfs, scale.secs(10, 80), seed)
        }),
        cell("vsched", |seed, scale: Scale| {
            fig17::run_mode(Mode::Vsched, scale.secs(10, 80), seed)
        }),
    ];
    Job {
        name: "fig17",
        desc: "vSched in a multi-tenant host with floating sibling vCPUs",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let cfs = got::<fig17::ModeOutcome>(it.next().unwrap());
            let vsched = got::<fig17::ModeOutcome>(it.next().unwrap());
            fig17::Fig17 { cfs, vsched }.to_string()
        }),
    }
}

/// Every suite workload, in the order `fig18_19::run` uses.
fn overall_benches() -> Vec<&'static str> {
    THROUGHPUT_BENCHES
        .iter()
        .chain(LATENCY_BENCHES.iter())
        .copied()
        .collect()
}

fn job_overall(name: &'static str, desc: &'static str, kind: ProfileKind) -> Job {
    let mut cells = Vec::new();
    for bench in overall_benches() {
        for mode in [Mode::Cfs, Mode::EnhancedCfs, Mode::Vsched] {
            cells.push(cell(
                format!("{bench}/{}", mode.label()),
                move |seed, scale| fig18_19::run_cell(kind, bench, mode, scale.secs(6, 25), seed),
            ));
        }
    }
    Job {
        name,
        desc,
        cells,
        reduce: Box::new(move |parts, _| {
            let mut it = parts.into_iter();
            let rows = overall_benches()
                .into_iter()
                .map(|bench| {
                    let cfs = got::<f64>(it.next().unwrap());
                    let ecfs = got::<f64>(it.next().unwrap());
                    let vs = got::<f64>(it.next().unwrap());
                    fig18_19::Row {
                        bench,
                        latency: is_latency_bench(bench),
                        values: (cfs, ecfs, vs),
                    }
                })
                .collect();
            fig18_19::Overall {
                profile: kind,
                rows,
            }
            .to_string()
        }),
    }
}

fn job_fig20() -> Job {
    let mut cells = Vec::new();
    for kind in [ProfileKind::Hpvm, ProfileKind::Rcvm] {
        for &bench in &fig20::BENCHES {
            for mode in [Mode::Cfs, Mode::Vsched] {
                cells.push(cell(
                    format!("{kind:?}/{bench}/{}", mode.label()),
                    move |seed, scale| fig20::run_cell(kind, bench, mode, scale.secs(6, 25), seed),
                ));
            }
        }
    }
    Job {
        name: "fig20",
        desc: "cost of vSched: total cycles and cycles per second",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let mut rows = Vec::new();
            for kind in [ProfileKind::Hpvm, ProfileKind::Rcvm] {
                for &bench in &fig20::BENCHES {
                    let cfs = got::<fig20::Cost>(it.next().unwrap());
                    let vs = got::<fig20::Cost>(it.next().unwrap());
                    rows.push((kind, bench, cfs, vs));
                }
            }
            fig20::Fig20 { rows }.to_string()
        }),
    }
}

fn job_fig21() -> Job {
    let mut cells = Vec::new();
    for &bench in &fig21::BENCHES {
        for mode in [Mode::Cfs, Mode::Vsched] {
            cells.push(cell(
                format!("{bench}/{}", mode.label()),
                move |seed, scale| fig21::run_cell(bench, mode, scale.secs(6, 25), seed),
            ));
        }
    }
    Job {
        name: "fig21",
        desc: "vSched overhead on a dedicated host where probing cannot help",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let rows = fig21::BENCHES
                .iter()
                .map(|&bench| {
                    let cfs = got::<f64>(it.next().unwrap());
                    let vs = got::<f64>(it.next().unwrap());
                    (bench, 1.0 - vs / cfs.max(1e-12))
                })
                .collect();
            fig21::Fig21 { rows }.to_string()
        }),
    }
}

fn job_table2() -> Job {
    let cells = vec![
        cell("rcvm", |seed, scale: Scale| {
            table2::measure(rcvm(seed), scale.secs(12, 30))
        }),
        cell("hpvm", |seed, scale: Scale| {
            table2::measure(hpvm(seed), scale.secs(12, 30))
        }),
    ];
    Job {
        name: "table2",
        desc: "vtop probing time: full probe vs validation pass",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let (rcvm_full_ns, rcvm_validate_ns) = got::<(u64, u64)>(it.next().unwrap());
            let (hpvm_full_ns, hpvm_validate_ns) = got::<(u64, u64)>(it.next().unwrap());
            table2::Table2 {
                rcvm_full_ns,
                rcvm_validate_ns,
                hpvm_full_ns,
                hpvm_validate_ns,
            }
            .to_string()
        }),
    }
}

fn job_table3() -> Job {
    fn breakdown(be: bool, cfg: VschedConfig, seed: u64, scale: Scale) -> table3::Breakdown {
        let h = fig14::run_cell("masstree", be, cfg, scale.secs(15, 60), seed);
        table3::Breakdown::from_handle(&h)
    }
    let cells = vec![
        cell("no-be/no-bvs", |seed, scale: Scale| {
            breakdown(false, VschedConfig::probers_only(), seed, scale)
        }),
        cell("no-be/bvs", |seed, scale: Scale| {
            breakdown(false, table3::bvs_cfg(), seed, scale)
        }),
        cell("be/no-bvs", |seed, scale: Scale| {
            breakdown(true, VschedConfig::probers_only(), seed, scale)
        }),
        cell("be/bvs-no-state-check", |seed, scale: Scale| {
            breakdown(
                true,
                table3::bvs_cfg().without_bvs_state_check(),
                seed,
                scale,
            )
        }),
        cell("be/bvs", |seed, scale: Scale| {
            breakdown(true, table3::bvs_cfg(), seed, scale)
        }),
    ];
    Job {
        name: "table3",
        desc: "Masstree p95 latency breakdown under bvs",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let mut next = || got::<table3::Breakdown>(it.next().unwrap());
            let no_be = (next(), next());
            let with_be = (next(), next(), next());
            table3::Table3 { no_be, with_be }.to_string()
        }),
    }
}

fn job_table4() -> Job {
    let mut cells = Vec::new();
    for &t in &table4::THREADS {
        for &prewake in &[false, true] {
            cells.push(cell(
                format!("t={t}/aware={prewake}"),
                move |seed, scale| table4::run_cell(t, prewake, scale.secs(8, 30), seed),
            ));
        }
    }
    Job {
        name: "table4",
        desc: "canneal throughput: activity-aware vs unaware ivh pre-waking",
        cells,
        reduce: Box::new(|parts, _| {
            type Cell4 = (f64, (u64, u64, u64));
            let mut it = parts.into_iter();
            let mut cells = Vec::new();
            let mut aware_stats = (0, 0, 0);
            for &t in &table4::THREADS {
                let (unaware, _) = got::<Cell4>(it.next().unwrap());
                let (aware, st) = got::<Cell4>(it.next().unwrap());
                if t == 1 {
                    aware_stats = st;
                }
                cells.push((unaware, aware));
            }
            table4::Table4 { cells, aware_stats }.to_string()
        }),
    }
}

fn job_chaos() -> Job {
    let cells = vec![
        cell("cfs", |seed, scale: Scale| {
            chaos::run_mode(chaos::ChaosMode::Cfs, scale.secs(6, 20), seed)
        }),
        cell("vsched-resilient", |seed, scale: Scale| {
            chaos::run_mode(chaos::ChaosMode::VschedResilient, scale.secs(6, 20), seed)
        }),
    ];
    Job {
        name: "chaos",
        desc: "graceful degradation under seed-driven fault injection",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let cfs = got::<chaos::ChaosOutcome>(it.next().unwrap());
            let vsched = got::<chaos::ChaosOutcome>(it.next().unwrap());
            chaos::Chaos { cfs, vsched }.to_string()
        }),
    }
}

fn job_adversary() -> Job {
    // One cell per (host policy, victim guest). Each cell runs its own
    // dodge and pollute sub-runs, so the matrix shards six ways.
    let mut cells = Vec::new();
    for &policy in adversary::POLICIES.iter() {
        for &guest in adversary::GUESTS.iter() {
            cells.push(cell(
                format!("{}/{}", policy.label(), guest.label()),
                move |seed, scale: Scale| {
                    adversary::run_cell(policy, guest, scale.secs(8, 30), seed)
                },
            ));
        }
    }
    Job {
        name: "adversary",
        desc: "scheduler-gaming co-tenants vs domain partitioning and hardened probing",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let mut rows = Vec::new();
            for &policy in adversary::POLICIES.iter() {
                for &guest in adversary::GUESTS.iter() {
                    rows.push((
                        policy,
                        guest,
                        got::<adversary::AdversaryOutcome>(it.next().unwrap()),
                    ));
                }
            }
            adversary::AdversaryMatrix { rows }.to_string()
        }),
    }
}

fn job_fleet() -> Job {
    // One cell per placement policy: each replays the identical churn
    // schedule under CFS guests and under vSched guests (same cell seed),
    // so the comparison inside a cell is apples-to-apples and the job
    // still shards across policies.
    let cells = ::fleet::POLICIES
        .iter()
        .map(|&policy| {
            cell(policy, move |seed, scale: Scale| {
                crate::fleet::run_cell(policy, scale.secs(4, 16), seed)
            })
        })
        .collect();
    Job {
        name: "fleet",
        desc: "CFS vs vSched guests on a churned multi-host cluster, per placement policy",
        cells,
        reduce: Box::new(|parts, _| {
            type Pair = (crate::fleet::FleetOutcome, crate::fleet::FleetOutcome);
            let mut it = parts.into_iter();
            let rows = ::fleet::POLICIES
                .iter()
                .map(|&policy| {
                    let (cfs, vs) = got::<Pair>(it.next().unwrap());
                    (policy, cfs, vs)
                })
                .collect();
            crate::fleet::Fleet { rows }.to_string()
        }),
    }
}

fn job_fleet_replay() -> Job {
    // One cell per (generator profile, placement policy). The day is
    // pinned by the profile's canonical day_seed — not the cell seed —
    // so every cell in a profile replays the identical generated trace;
    // within a cell, CFS and vSched guests run it back to back.
    let mut cells = Vec::new();
    for profile in replay::profile_names() {
        for &policy in ::fleet::POLICIES.iter() {
            cells.push(cell(
                format!("{profile}/{policy}"),
                move |seed, scale: Scale| {
                    replay::run_cell(policy, profile, scale.secs(4, 16), seed)
                },
            ));
        }
    }
    Job {
        name: "fleet-replay",
        desc: "placement policies x guest modes over one replayed SAP-shaped day per profile",
        cells,
        reduce: Box::new(|parts, _| {
            type Pair = (replay::ReplayOutcome, replay::ReplayOutcome);
            let mut it = parts.into_iter();
            let mut rows = Vec::new();
            for profile in replay::profile_names() {
                for &policy in ::fleet::POLICIES.iter() {
                    let (cfs, vs) = got::<Pair>(it.next().unwrap());
                    rows.push((profile, policy, cfs, vs));
                }
            }
            replay::Replay { rows }.to_string()
        }),
    }
}

fn job_fleet_chaos() -> Job {
    // One cell per (policy, guest config). Every cell replays the same
    // faulted day — trace pinned by the profile's day_seed, failures by
    // fleet_chaos::chaos_day_seed — so rows differ only in scheduler and
    // migration mode; the reduce footer reports the handoff-vs-cold
    // ablation per policy.
    let mut cells = Vec::new();
    for &policy in ::fleet::POLICIES.iter() {
        for &g in fleet_chaos::GUEST_CONFIGS.iter() {
            cells.push(cell(
                format!("{policy}/{}", g.label()),
                move |seed, scale: Scale| fleet_chaos::run_cell(policy, g, scale.secs(4, 16), seed),
            ));
        }
    }
    Job {
        name: "fleet-chaos",
        desc: "host-failure chaos, evacuation, and degraded mode on a replayed faulted day",
        cells,
        reduce: Box::new(|parts, scale| {
            let mut it = parts.into_iter();
            let mut rows = Vec::new();
            for &policy in ::fleet::POLICIES.iter() {
                let outs: Vec<fleet_chaos::FleetChaosOutcome> = fleet_chaos::GUEST_CONFIGS
                    .iter()
                    .map(|_| got::<fleet_chaos::FleetChaosOutcome>(it.next().unwrap()))
                    .collect();
                rows.push((policy, outs.try_into().expect("three guest configs")));
            }
            fleet_chaos::FleetChaos {
                faults: fleet_chaos::plan_for(scale.secs(4, 16)).events.len(),
                rows,
            }
            .to_string()
        }),
    }
}

fn job_vcache() -> Job {
    let mut cells = Vec::new();
    for &name in &vcache::BENCHES {
        for &mode in &vcache::MODES {
            cells.push(cell(format!("{name}/{mode}"), move |seed, scale| {
                vcache::run_cell(name, mode, scale.secs(8, 40), seed)
            }));
        }
    }
    Job {
        name: "vcache",
        desc: "cache-aware bvs vs stock vSched under an LLC-thrashing neighbour",
        cells,
        reduce: Box::new(|parts, _| {
            let mut it = parts.into_iter();
            let rows = vcache::BENCHES
                .iter()
                .map(|&name| {
                    (
                        name,
                        vcache::MODES
                            .iter()
                            .map(|_| got::<vcache::VcacheCell>(it.next().unwrap()))
                            .collect(),
                    )
                })
                .collect();
            vcache::VcacheFig { rows }.to_string()
        }),
    }
}

/// The supervision canary: a job whose cells fail on purpose. Never in
/// [`registry`] — `run_suite` appends it only when
/// [`SuiteOptions::canary`] is set (the `VSCHED_CANARY` env gate in the
/// binary), so CI can assert that a panicking cell and an over-deadline
/// cell are isolated, reported, and leave every real job's bytes alone.
fn canary_job() -> Job {
    let cells = vec![
        cell("healthy", |seed, _: Scale| seed),
        cell("panic", |_, _: Scale| -> u64 {
            panic!("canary: injected panic")
        }),
        cell("deadline", |_, _: Scale| -> u64 {
            std::thread::sleep(Duration::from_millis(120));
            0
        })
        .with_deadline(Duration::from_millis(10)),
    ];
    Job {
        name: "canary",
        desc: "always-failing supervision canary (VSCHED_CANARY=1 only)",
        cells,
        reduce: Box::new(|parts, _| {
            // Unreachable in practice: the panic cell always fails the job
            // before reduction. Kept total so a future "healthy canary"
            // variant still renders.
            let sum: u64 = parts.into_iter().map(got::<u64>).sum();
            format!("canary merged (sum {sum})")
        }),
    }
}

/// All jobs in suite output order.
pub fn registry() -> Vec<Job> {
    vec![
        job_fig02(),
        job_fig03(),
        job_fig04(),
        job_fig10(),
        job_fig11(),
        job_fig12(),
        job_fig13(),
        job_fig14(),
        job_fig15(),
        job_fig16(),
        job_fig17(),
        job_overall(
            "fig18",
            "overall improvement with vSched on the resource-constrained VM",
            ProfileKind::Rcvm,
        ),
        job_overall(
            "fig19",
            "overall improvement with vSched on the high-performance VM",
            ProfileKind::Hpvm,
        ),
        job_fig20(),
        job_fig21(),
        job_table2(),
        job_table3(),
        job_table4(),
        job_chaos(),
        job_adversary(),
        job_fleet(),
        job_fleet_replay(),
        job_fleet_chaos(),
        job_vcache(),
    ]
}

/// How to run the suite.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Worker threads; `0` sizes the pool by `available_parallelism`.
    pub jobs: usize,
    /// Filter on job names: comma-separated substrings, any match keeps
    /// the job (`None` = all).
    pub filter: Option<String>,
    /// Experiment scale.
    pub scale: Scale,
    /// Base seed mixed into every cell seed.
    pub seed: u64,
    /// Retry/deadline policy for supervised cells.
    pub supervise: SupervisePolicy,
    /// Checkpoint directory (`None` = no checkpointing).
    pub checkpoint: Option<PathBuf>,
    /// Replay finished jobs from the checkpoint instead of re-running.
    pub resume: bool,
    /// Append the always-failing canary job (CI supervision smoke).
    pub canary: bool,
    /// Host-stepping workers for the fleet cells' clusters
    /// (`--fleet-threads`); `None` keeps the fleet crate's process
    /// default (available parallelism). Worker count never changes cell
    /// output — only wall clock — so it stays out of the checkpoint key.
    pub fleet_threads: Option<std::num::NonZeroUsize>,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            jobs: 0,
            filter: None,
            scale: Scale::Quick,
            seed: 42,
            supervise: SupervisePolicy::default(),
            checkpoint: None,
            resume: false,
            canary: false,
            fleet_threads: None,
        }
    }
}

impl SuiteOptions {
    /// The checkpoint key this run writes/reads.
    fn ckpt_key(&self) -> CkptKey {
        CkptKey {
            version: CkptKey::current_version(),
            seed: self.seed,
            scale: self.scale.label().to_string(),
            filter: self.filter.clone().unwrap_or_default(),
        }
    }
}

/// `--filter` matched nothing: refuse to silently run zero cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError {
    /// The filter as given.
    pub filter: String,
    /// Every valid figure id, in suite order.
    pub valid: Vec<&'static str>,
}

impl std::fmt::Display for FilterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "--filter '{}' matches no suite job; valid figure ids: {}",
            self.filter,
            self.valid.join(", ")
        )
    }
}

impl std::error::Error for FilterError {}

/// One job's merged output plus its summed cell compute time.
#[derive(Debug)]
pub struct JobReport {
    /// Job name.
    pub name: &'static str,
    /// Number of cells the job sharded into.
    pub cells: usize,
    /// The figure's rendered output (empty when the job failed).
    pub output: String,
    /// Total cell compute (CPU) seconds, summed across workers.
    pub cpu_secs: f64,
    /// Whether every cell merged and the figure rendered.
    pub ok: bool,
    /// Whether the output was replayed from a checkpoint.
    pub from_checkpoint: bool,
}

/// The whole suite's outcome.
#[derive(Debug)]
pub struct SuiteResult {
    /// Per-job reports, in registry order.
    pub reports: Vec<JobReport>,
    /// Worker threads actually used.
    pub workers: usize,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
    /// Cells that exhausted their retries, in (job, cell) order.
    pub failures: FailureReport,
    /// Cells actually executed this run (replayed jobs contribute none).
    pub executed_cells: usize,
    /// Jobs replayed byte-for-byte from the checkpoint.
    pub resumed_jobs: usize,
    /// Operational notes (checkpoint discards, I/O degradations); never
    /// part of figure output.
    pub notes: Vec<String>,
}

/// Resolves `--jobs 0` to the machine's parallelism.
pub fn resolve_workers(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Whether a job name passes a comma-separated substring filter.
fn filter_matches(name: &str, filter: Option<&str>) -> bool {
    match filter {
        None => true,
        Some(f) => f
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .any(|p| name.contains(p)),
    }
}

/// Runs every registry job whose name matches the filter, under
/// supervision. A filter that selects nothing is an error (listing the
/// valid ids) rather than a silently empty run.
pub fn run_suite(opts: &SuiteOptions) -> Result<SuiteResult, FilterError> {
    if let Some(n) = opts.fleet_threads {
        // Cells reach their clusters through `Cluster::new`, which reads
        // the fleet crate's process-wide default.
        ::fleet::set_default_fleet_threads(Some(n));
    }
    let all = registry();
    let valid: Vec<&'static str> = all.iter().map(|j| j.name).collect();
    let mut jobs: Vec<Job> = all
        .into_iter()
        .filter(|j| filter_matches(j.name, opts.filter.as_deref()))
        .collect();
    if jobs.is_empty() {
        return Err(FilterError {
            filter: opts.filter.clone().unwrap_or_default(),
            valid,
        });
    }
    if opts.canary {
        // Appended after filtering: the canary rides along with whatever
        // real jobs run, and its absence never changes their output.
        jobs.push(canary_job());
    }
    Ok(run_jobs(jobs, opts))
}

struct Item {
    job: usize,
    cell: usize,
    seed: u64,
}

/// Per-job completion state shared by the worker pool.
struct JobState {
    /// Cells not yet finished (success or exhausted failure). The worker
    /// that decrements this to zero owns the job's reduction.
    remaining: AtomicUsize,
    /// Set when any cell exhausts its retries: the job skips reduction.
    failed: AtomicBool,
    /// One slot per cell, filled in any order, drained in cell order.
    slots: Vec<Mutex<Option<(Part, f64)>>>,
    /// The reduced output and summed cell CPU seconds, once complete.
    output: Mutex<Option<(String, f64)>>,
}

fn run_jobs(jobs: Vec<Job>, opts: &SuiteOptions) -> SuiteResult {
    let t0 = Instant::now();
    let workers = resolve_workers(opts.jobs);
    let mut notes: Vec<String> = Vec::new();

    // Checkpoint plumbing: open (or resume) the directory up front, and
    // collect the jobs we can replay without executing. I/O trouble
    // degrades to an un-checkpointed run with a note, never a crash.
    let mut replay: BTreeMap<usize, String> = BTreeMap::new();
    let ckpt: Option<Mutex<Checkpoint>> = match &opts.checkpoint {
        None => None,
        Some(dir) => {
            let key = opts.ckpt_key();
            let opened = if opts.resume {
                Checkpoint::resume(dir, key).map(|(ck, note)| {
                    notes.extend(note);
                    for (ji, job) in jobs.iter().enumerate() {
                        if let Some(out) = ck.load(job.name) {
                            replay.insert(ji, out);
                        }
                    }
                    ck
                })
            } else {
                Checkpoint::create(dir, key)
            };
            match opened {
                Ok(ck) => Some(Mutex::new(ck)),
                Err(e) => {
                    notes.push(format!(
                        "checkpoint dir {} unusable ({e}); running without checkpoints",
                        dir.display()
                    ));
                    None
                }
            }
        }
    };
    let resumed_jobs = replay.len();

    // Flatten into a work list, skipping replayed jobs; seeds are
    // precomputed from cell identity so nothing downstream depends on
    // which worker runs what.
    let items: Vec<Item> = jobs
        .iter()
        .enumerate()
        .filter(|(ji, _)| !replay.contains_key(ji))
        .flat_map(|(ji, j)| {
            j.cells.iter().enumerate().map(move |(ci, c)| Item {
                job: ji,
                cell: ci,
                seed: cell_seed(opts.seed, j.name, &c.label),
            })
        })
        .collect();

    let states: Vec<JobState> = jobs
        .iter()
        .map(|j| JobState {
            remaining: AtomicUsize::new(j.cells.len()),
            failed: AtomicBool::new(false),
            slots: j.cells.iter().map(|_| Mutex::new(None)).collect(),
            output: Mutex::new(None),
        })
        .collect();
    let failures: Mutex<Vec<(usize, usize, CellFailure)>> = Mutex::new(Vec::new());
    let late_notes: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let cursor = AtomicUsize::new(0);
    let n_threads = workers.min(items.len()).max(1);
    std::thread::scope(|s| {
        for _ in 0..n_threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let it = &items[i];
                let job = &jobs[it.job];
                let st = &states[it.job];
                match supervise::run_cell(
                    job.name,
                    &job.cells[it.cell],
                    it.seed,
                    opts.scale,
                    &opts.supervise,
                ) {
                    Ok(filled) => *st.slots[it.cell].lock().unwrap() = Some(filled),
                    Err(cf) => {
                        st.failed.store(true, Ordering::Release);
                        failures.lock().unwrap().push((it.job, it.cell, cf));
                    }
                }
                // The worker finishing a job's last cell merges it at once:
                // the reduced output reaches the checkpoint while the rest
                // of the suite is still running.
                if st.remaining.fetch_sub(1, Ordering::AcqRel) == 1
                    && !st.failed.load(Ordering::Acquire)
                {
                    let mut parts = Vec::with_capacity(st.slots.len());
                    let mut cpu = 0.0f64;
                    for slot in &st.slots {
                        let (part, secs) = slot
                            .lock()
                            .unwrap()
                            .take()
                            .expect("job complete and unfailed: every slot filled");
                        parts.push(part);
                        cpu += secs;
                    }
                    // A reducer panic (type confusion, arithmetic) fails
                    // its job, not the suite.
                    match panic::catch_unwind(AssertUnwindSafe(|| (job.reduce)(parts, opts.scale)))
                    {
                        Ok(out) => {
                            if let Some(ck) = &ckpt {
                                if let Err(e) = ck.lock().unwrap().record(job.name, &out) {
                                    late_notes
                                        .lock()
                                        .unwrap()
                                        .push(format!("checkpointing {} failed: {e}", job.name));
                                }
                            }
                            *st.output.lock().unwrap() = Some((out, cpu));
                        }
                        Err(_) => {
                            st.failed.store(true, Ordering::Release);
                            late_notes
                                .lock()
                                .unwrap()
                                .push(format!("{}: reducer panicked; job failed", job.name));
                        }
                    }
                }
            });
        }
    });

    let executed_cells = items.len();
    notes.extend(late_notes.into_inner().unwrap());
    let mut failed = failures.into_inner().unwrap();
    failed.sort_by_key(|&(ji, ci, _)| (ji, ci));

    let mut reports = Vec::new();
    for ((ji, job), st) in jobs.iter().enumerate().zip(states) {
        let cells = job.cells.len();
        let report = if let Some(output) = replay.remove(&ji) {
            JobReport {
                name: job.name,
                cells,
                output,
                cpu_secs: 0.0,
                ok: true,
                from_checkpoint: true,
            }
        } else if let Some((output, cpu_secs)) = st.output.into_inner().unwrap() {
            JobReport {
                name: job.name,
                cells,
                output,
                cpu_secs,
                ok: true,
                from_checkpoint: false,
            }
        } else {
            // Failed job: surviving cells still count toward CPU time.
            let cpu_secs = st
                .slots
                .iter()
                .filter_map(|s| s.lock().unwrap().take())
                .map(|(_, secs)| secs)
                .sum();
            JobReport {
                name: job.name,
                cells,
                output: String::new(),
                cpu_secs,
                ok: false,
                from_checkpoint: false,
            }
        };
        reports.push(report);
    }
    SuiteResult {
        reports,
        workers: n_threads,
        wall_secs: t0.elapsed().as_secs_f64(),
        failures: FailureReport {
            failures: failed.into_iter().map(|(_, _, cf)| cf).collect(),
        },
        executed_cells,
        resumed_jobs,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seed_is_stable_and_distinct() {
        let a = cell_seed(42, "fig02", "silo/be=false/lat=2");
        assert_eq!(a, cell_seed(42, "fig02", "silo/be=false/lat=2"));
        assert_ne!(a, cell_seed(42, "fig02", "silo/be=false/lat=4"));
        assert_ne!(a, cell_seed(42, "fig03", "silo/be=false/lat=2"));
        assert_ne!(a, cell_seed(43, "fig02", "silo/be=false/lat=2"));
    }

    #[test]
    fn registry_covers_the_full_suite() {
        let names: Vec<&str> = registry().iter().map(|j| j.name).collect();
        assert_eq!(names.len(), 24);
        for want in [
            "fig02",
            "fig15",
            "fig18",
            "fig19",
            "table2",
            "table4",
            "chaos",
            "adversary",
            "fleet",
            "fleet-replay",
            "fleet-chaos",
            "vcache",
        ] {
            assert!(names.contains(&want), "missing {want}");
        }
        // Every job decomposes into at least two independent cells except
        // none — sharding is the whole point — and carries a one-line
        // description for `suite --list`.
        for j in registry() {
            assert!(j.cells.len() >= 2, "{} has {} cells", j.name, j.cells.len());
            assert!(
                !j.desc.is_empty() && !j.desc.contains('\n'),
                "{} needs a one-line description",
                j.name
            );
        }
    }

    #[test]
    fn zero_match_filter_is_an_error_listing_valid_ids() {
        let err = run_suite(&SuiteOptions {
            filter: Some("fig99".into()),
            ..SuiteOptions::default()
        })
        .unwrap_err();
        assert_eq!(err.filter, "fig99");
        assert_eq!(err.valid.len(), 24);
        assert!(err.valid.contains(&"fig03"));
        let msg = err.to_string();
        assert!(msg.contains("fig99") && msg.contains("fig03") && msg.contains("table4"));
    }

    #[test]
    fn filter_is_comma_separated_any_match() {
        assert!(filter_matches("fig03", Some("fig03,table2")));
        assert!(filter_matches("table2", Some("fig03,table2")));
        assert!(!filter_matches("fig04", Some("fig03,table2")));
        assert!(filter_matches("fig04", Some(" fig04 , ")));
        assert!(filter_matches("anything", None));
    }

    #[test]
    fn canary_never_sits_in_the_registry() {
        assert!(registry().iter().all(|j| j.name != "canary"));
        let c = canary_job();
        assert_eq!(c.cells.len(), 3);
        assert!(c.cells[2].deadline.is_some(), "deadline cell has a budget");
    }

    #[test]
    fn labels_are_unique_within_a_job() {
        for j in registry() {
            let mut labels: Vec<&str> = j.cells.iter().map(|c| c.label.as_str()).collect();
            labels.sort_unstable();
            let before = labels.len();
            labels.dedup();
            assert_eq!(before, labels.len(), "duplicate cell label in {}", j.name);
        }
    }
}
