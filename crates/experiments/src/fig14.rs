//! Figure 14 and Table 3: latency reduction with bvs.
//!
//! A 16-vCPU VM is overcommitted with a stressor VM on the same 16 cores,
//! giving every vCPU 50% capacity; per-thread host quanta make half the
//! vCPUs' inactive periods 2× shorter (the paper tunes the same asymmetry
//! with bandwidth control and granularity sysctls). Tailbench apps run at
//! low rate, with and without best-effort background tasks;
//! vProbers are enabled in every configuration and only bvs is toggled.
//! The paper reports a 42% average p95 reduction, and Table 3 breaks
//! Masstree's latency into queue/service components, including the
//! "bvs without the state check" ablation.

use crate::common::{Mode, Scale};
use hostsim::{HostSpec, Machine, ScenarioBuilder, VmSpec};
use metrics::Table;
use simcore::time::MS;
use simcore::{SimRng, SimTime};
use std::fmt;
use vsched::VschedConfig;
use workloads::{build_latency, work_ms, Handle, Stressor};

/// Benchmarks in Figure 14.
pub const BENCHES: [&str; 5] = ["img-dnn", "masstree", "silo", "specjbb", "xapian"];

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Benchmark name.
    pub bench: &'static str,
    /// With best-effort tasks?
    pub best_effort: bool,
    /// With bvs?
    pub bvs: bool,
    /// p95 end-to-end latency (ns).
    pub p95_ns: u64,
}

/// Figure 14 result.
pub struct Fig14 {
    /// All cells.
    pub cells: Vec<Cell>,
}

impl Fig14 {
    /// Looks up one cell's p95.
    pub fn p95(&self, bench: &str, best_effort: bool, bvs: bool) -> u64 {
        self.cells
            .iter()
            .find(|c| c.bench == bench && c.best_effort == best_effort && c.bvs == bvs)
            .map(|c| c.p95_ns)
            .unwrap_or(0)
    }

    /// Mean p95 reduction across all benchmark/best-effort combinations.
    pub fn mean_reduction(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for &be in &[false, true] {
            for bench in BENCHES {
                let without = self.p95(bench, be, false) as f64;
                let with = self.p95(bench, be, true) as f64;
                if without > 0.0 {
                    sum += 1.0 - with / without;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

impl fmt::Display for Fig14 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 14: p95 tail latency with bvs, normalized to bvs disabled (lower is better)"
        )?;
        let mut t = Table::new(&["config", "without bvs", "with bvs"]);
        for &be in &[false, true] {
            for bench in BENCHES {
                let base = self.p95(bench, be, false).max(1) as f64;
                t.row_owned(vec![
                    format!("{bench}{}", if be { " (+best-effort)" } else { "" }),
                    "100.0".into(),
                    format!("{:.1}", 100.0 * self.p95(bench, be, true) as f64 / base),
                ]);
            }
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "mean p95 reduction with bvs: {:.0}% (paper: 42%)",
            100.0 * self.mean_reduction()
        )
    }
}

/// Builds the Figure 14 machine: 16 vCPUs at symmetric 50% capacity
/// (competing stressor VM), vCPUs 0–7 with 2x lower latency (4 ms host
/// quanta vs 8 ms).
pub fn build_machine(seed: u64) -> (Machine, usize) {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(16), seed).vm(VmSpec::pinned(16, 0));
    let (b, stress_vm) = b.vm(VmSpec::pinned(16, 0));
    let mut m = b.build();
    let (sw, _s) = Stressor::new(16, work_ms(10.0));
    m.set_workload(stress_vm, Box::new(sw));
    for th in 0..16 {
        m.set_thread_quantum(th, if th < 8 { 4 * MS } else { 8 * MS });
    }
    (m, vm)
}

/// Runs one cell; returns the latency handle for Table 3 reuse.
pub fn run_cell(
    bench: &'static str,
    best_effort: bool,
    cfg: VschedConfig,
    secs: u64,
    seed: u64,
) -> Handle {
    let (mut m, vm) = build_machine(seed);
    // Low offered load: the tail is dominated by wakeup placement.
    let interarrival = 8.0 * MS as f64;
    let (wl, handle) = build_latency(
        bench,
        4,
        interarrival,
        best_effort,
        SimRng::new(seed ^ 0xD1),
    );
    m.set_workload(vm, wl);
    Mode::install_custom(&mut m, vm, cfg);
    m.start();
    m.run_until(SimTime::from_secs(secs));
    handle
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig14 {
    let secs = scale.secs(15, 60);
    let mut cells = Vec::new();
    for &be in &[false, true] {
        for bench in BENCHES {
            for &bvs in &[false, true] {
                let cfg = if bvs {
                    VschedConfig {
                        ivh: false,
                        rwc: false,
                        ..VschedConfig::full()
                    }
                } else {
                    VschedConfig::probers_only()
                };
                let handle = run_cell(bench, be, cfg, secs, seed);
                cells.push(Cell {
                    bench,
                    best_effort: be,
                    bvs,
                    p95_ns: handle.p95_ns().unwrap_or(0),
                });
            }
        }
    }
    Fig14 { cells }
}
