//! Automatic shrinking of failing chaos seeds.
//!
//! A chaos seed that trips the streaming invariant checker hands you a
//! `FaultPlan` with hundreds of actions — useless as a bug report. This
//! module delta-debugs the plan down to a locally-minimal action subset
//! that still fails the *same checker law* (compared by
//! [`trace::check::ViolationKind::law_name`] via `CheckReport::first_law`),
//! using the classic ddmin algorithm: try dropping chunks (and keeping
//! complements) at progressively finer granularity, re-running the checker
//! on each candidate, until no single removal preserves the failure.
//!
//! The result is 1-minimal — removing **any one** remaining action makes
//! the violation disappear — which is exactly the property that makes a
//! repro plan readable. Minimality is *local*: a different, smaller
//! failing subset may exist elsewhere in the lattice; ddmin trades that
//! global guarantee for a number of checker runs linear-ish in plan size.
//!
//! The oracle is pluggable (`Fn(&FaultPlan) -> Option<String>`, returning
//! the failed law's name) so tests can exercise the machinery with
//! synthetic laws without needing a genuine simulator bug on tap; the
//! `suite --shrink` binary wires in the real chaos checker.

use crate::adversary::{GuestMode, HostPolicy};
use crate::chaos::{self, ChaosMode};
use crate::fleet_chaos::ChaosGuests;
use ::fleet::{FleetChaosPlan, HostOp};
use hostsim::FaultPlan;
use workloads::{AttackKind, AttackPlan};

/// What a completed shrink reports.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized plan (same seed and spec, fewer actions).
    pub plan: FaultPlan,
    /// The checker law every kept candidate failed.
    pub law: String,
    /// Actions in the original plan.
    pub original_actions: usize,
    /// Oracle invocations spent.
    pub oracle_runs: usize,
}

/// Why a shrink could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShrinkError {
    /// The full plan does not fail any law — nothing to shrink.
    PlanPasses,
}

impl std::fmt::Display for ShrinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShrinkError::PlanPasses => {
                write!(f, "plan passes every checker law; nothing to shrink")
            }
        }
    }
}

/// The core ddmin loop, generic over the event list (host-level fault
/// actions, fleet-level host faults, anything orderable into a plan):
/// repeatedly drops one chunk at a time — keeping any complement that
/// still fails `target` — at progressively finer granularity, until no
/// single removal preserves the failure. `fails` runs the oracle on a
/// candidate subsequence and returns the law it breaks, if any.
fn ddmin<E: Clone>(
    mut events: Vec<E>,
    target: &str,
    mut fails: impl FnMut(&[E]) -> Option<String>,
) -> Vec<E> {
    let mut n = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(n);
        let mut reduced = false;
        // Try each chunk's *complement* (i.e. drop one chunk at a time);
        // for n == 2 this also covers "keep one half".
        for start in (0..events.len()).step_by(chunk) {
            let candidate: Vec<E> = events[..start]
                .iter()
                .chain(events[(start + chunk).min(events.len())..].iter())
                .cloned()
                .collect();
            if candidate.is_empty() {
                continue;
            }
            if fails(&candidate).as_deref() == Some(target) {
                events = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if n >= events.len() {
                break; // singleton granularity exhausted: 1-minimal
            }
            n = (n * 2).min(events.len());
        }
    }
    events
}

/// Delta-debugs `plan` against `law`, which returns the name of the law a
/// candidate plan fails (or `None` if it passes). Returns a locally
/// minimal plan failing the same law as the full plan.
pub fn shrink_plan(
    plan: &FaultPlan,
    mut law: impl FnMut(&FaultPlan) -> Option<String>,
) -> Result<ShrinkOutcome, ShrinkError> {
    let mut runs = 1usize;
    let target = law(plan).ok_or(ShrinkError::PlanPasses)?;
    let events = ddmin(plan.events.clone(), &target, |evs| {
        runs += 1;
        law(&plan.with_events(evs.to_vec()))
    });
    Ok(ShrinkOutcome {
        plan: plan.with_events(events),
        law: target,
        original_actions: plan.events.len(),
        oracle_runs: runs,
    })
}

/// What a completed fleet-plan shrink reports.
#[derive(Debug, Clone)]
pub struct FleetShrinkOutcome {
    /// The minimized chaos plan (same seed and spec, fewer host faults).
    pub plan: FleetChaosPlan,
    /// The checker law every kept candidate failed.
    pub law: String,
    /// Host faults in the original plan.
    pub original_events: usize,
    /// Oracle invocations spent.
    pub oracle_runs: usize,
}

/// Fleet sibling of [`shrink_plan`]: delta-debugs a [`FleetChaosPlan`]
/// down to a 1-minimal host-fault subset still failing the same law.
pub fn shrink_fleet_plan(
    plan: &FleetChaosPlan,
    mut law: impl FnMut(&FleetChaosPlan) -> Option<String>,
) -> Result<FleetShrinkOutcome, ShrinkError> {
    let mut runs = 1usize;
    let target = law(plan).ok_or(ShrinkError::PlanPasses)?;
    let events = ddmin(plan.events.clone(), &target, |evs| {
        runs += 1;
        law(&plan.with_events(evs.to_vec()))
    });
    Ok(FleetShrinkOutcome {
        plan: plan.with_events(events),
        law: target,
        original_events: plan.events.len(),
        oracle_runs: runs,
    })
}

/// What a completed attack-plan shrink reports.
#[derive(Debug, Clone)]
pub struct AttackShrinkOutcome {
    /// The minimized attack plan (same seed and spec, fewer actions).
    pub plan: AttackPlan,
    /// The checker law every kept candidate failed.
    pub law: String,
    /// Actions in the original plan.
    pub original_actions: usize,
    /// Oracle invocations spent.
    pub oracle_runs: usize,
}

/// Adversary sibling of [`shrink_plan`]: delta-debugs an [`AttackPlan`]
/// down to a 1-minimal attack-action subset still failing the same law.
pub fn shrink_attack_plan(
    plan: &AttackPlan,
    mut law: impl FnMut(&AttackPlan) -> Option<String>,
) -> Result<AttackShrinkOutcome, ShrinkError> {
    let mut runs = 1usize;
    let target = law(plan).ok_or(ShrinkError::PlanPasses)?;
    let events = ddmin(plan.events.clone(), &target, |evs| {
        runs += 1;
        law(&plan.with_events(evs.to_vec()))
    });
    Ok(AttackShrinkOutcome {
        plan: plan.with_events(events),
        law: target,
        original_actions: plan.events.len(),
        oracle_runs: runs,
    })
}

/// The production oracle: run the chaos cell's resilient-vSched
/// configuration under `plan` and report which invariant law (if any) the
/// streaming checker saw broken first.
pub fn chaos_checker_law(plan: &FaultPlan, seed: u64) -> Option<String> {
    let outcome = chaos::run_plan(ChaosMode::VschedResilient, plan, seed);
    outcome.first_law
}

/// A synthetic oracle for exercising the shrink pipeline end-to-end when
/// no genuine checker bug is available (CI smoke, tests). The "law" fails
/// iff the plan still contains at least two `QuotaChurn` actions and at
/// least one `StressorBurst` — so the minimal repro is exactly three
/// actions. Selected by `VSCHED_SHRINK_LAW=synthetic` in the suite binary.
pub fn synthetic_law(plan: &FaultPlan) -> Option<String> {
    use trace::FaultClass;
    let churn = plan
        .events
        .iter()
        .filter(|e| e.class == FaultClass::QuotaChurn)
        .count();
    let burst = plan
        .events
        .iter()
        .filter(|e| e.class == FaultClass::StressorBurst)
        .count();
    (churn >= 2 && burst >= 1).then(|| "synthetic-canary".to_string())
}

/// The fleet production oracle: replay the fleet-chaos cell's canonical
/// day under `plan` (vSched guests, probe-state handoff) and report
/// which trace law (if any) the checkers saw broken first.
pub fn fleet_chaos_checker_law(plan: &FleetChaosPlan, seed: u64) -> Option<String> {
    let horizon_ns = plan
        .spec()
        .start
        .ns()
        .saturating_add(plan.spec().horizon_ns)
        .max(1);
    run_cell_under(plan, horizon_ns, seed)
}

fn run_cell_under(plan: &FleetChaosPlan, horizon_ns: u64, seed: u64) -> Option<String> {
    crate::fleet_chaos::run_plan(
        "probe-aware",
        ChaosGuests::VschedHandoff,
        plan,
        horizon_ns,
        seed,
    )
    .first_law
}

/// Fleet sibling of [`synthetic_law`]: fails iff the plan still contains
/// at least one crash *and* at least one drain — so the minimal repro is
/// exactly two host faults. Selected by `VSCHED_SHRINK_LAW=synthetic`.
pub fn fleet_synthetic_law(plan: &FleetChaosPlan) -> Option<String> {
    let crash = plan.events.iter().filter(|e| e.op == HostOp::Crash).count();
    let drain = plan.events.iter().filter(|e| e.op == HostOp::Drain).count();
    (crash >= 1 && drain >= 1).then(|| "fleet-synthetic-canary".to_string())
}

/// The adversary production oracle: run the attack through the richest
/// cell — domain-partitioned host, hardened vSched guest — so the domain
/// ownership/steal laws *and* the probe-rejection path are all live, and
/// report which trace law (if any) the checker saw broken first.
pub fn adversary_checker_law(plan: &AttackPlan, seed: u64) -> Option<String> {
    crate::adversary::run_attack(HostPolicy::Domain, GuestMode::VschedHardened, plan, seed)
        .first_law
}

/// Adversary sibling of [`synthetic_law`]: fails iff the plan still
/// contains at least two `ProbeBurst` actions and at least one
/// `DodgeRun` — so the minimal repro is exactly three actions. Selected
/// by `VSCHED_SHRINK_LAW=synthetic`.
pub fn adversary_synthetic_law(plan: &AttackPlan) -> Option<String> {
    let bursts = plan
        .events
        .iter()
        .filter(|e| e.kind == AttackKind::ProbeBurst)
        .count();
    let dodges = plan
        .events
        .iter()
        .filter(|e| e.kind == AttackKind::DodgeRun)
        .count();
    (bursts >= 2 && dodges >= 1).then(|| "adversary-synthetic-canary".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostsim::ChaosSpec;
    use simcore::time::MS;

    fn plan(seed: u64) -> FaultPlan {
        let spec = ChaosSpec::for_pinned_vm(0, 8, 4_000 * MS).mean_interval(250 * MS);
        FaultPlan::generate(seed, &spec)
    }

    #[test]
    fn shrinks_to_a_one_minimal_repro_of_the_same_law() {
        let full = plan(0xC0FFEE);
        assert!(
            synthetic_law(&full).is_some(),
            "seed must fail the synthetic law to start"
        );
        let out = shrink_plan(&full, synthetic_law).unwrap();
        assert_eq!(out.law, "synthetic-canary");
        assert!(
            out.plan.events.len() < full.events.len(),
            "strictly fewer actions ({} -> {})",
            full.events.len(),
            out.plan.events.len()
        );
        // The synthetic law's minimum is exactly 3 actions.
        assert_eq!(out.plan.events.len(), 3);
        assert!(synthetic_law(&out.plan).is_some(), "repro still fails");
        // 1-minimality: removing any single remaining action passes.
        for skip in 0..out.plan.events.len() {
            let mut fewer = out.plan.events.clone();
            fewer.remove(skip);
            assert!(
                synthetic_law(&out.plan.with_events(fewer)).is_none(),
                "not 1-minimal at index {skip}"
            );
        }
    }

    #[test]
    fn passing_plan_reports_nothing_to_shrink() {
        let spec = ChaosSpec::for_pinned_vm(0, 2, 600 * MS).only(trace::FaultClass::ProbeNoise);
        let p = FaultPlan::generate(1, &spec);
        assert!(matches!(
            shrink_plan(&p, synthetic_law),
            Err(ShrinkError::PlanPasses)
        ));
    }

    #[test]
    fn shrink_is_deterministic() {
        let full = plan(0xC0FFEE);
        let a = shrink_plan(&full, synthetic_law).unwrap();
        let b = shrink_plan(&full, synthetic_law).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.oracle_runs, b.oracle_runs);
    }

    #[test]
    fn shrunk_plan_round_trips_through_the_repro_file_format() {
        let full = plan(0xC0FFEE);
        let out = shrink_plan(&full, synthetic_law).unwrap();
        let back = FaultPlan::from_json(&out.plan.to_json()).unwrap();
        assert_eq!(back, out.plan);
        assert!(synthetic_law(&back).is_some(), "parsed repro still fails");
    }

    fn fleet_plan(seed: u64) -> FleetChaosPlan {
        let spec = ::fleet::FleetChaosSpec::for_fleet(4, 6_000 * MS).mean_gap(300 * MS);
        FleetChaosPlan::generate(seed, &spec)
    }

    #[test]
    fn fleet_plans_shrink_to_a_one_minimal_crash_drain_pair() {
        let full = fleet_plan(0xF1EE7);
        assert!(
            fleet_synthetic_law(&full).is_some(),
            "seed must fail the fleet synthetic law to start ({} events)",
            full.events.len()
        );
        let out = shrink_fleet_plan(&full, fleet_synthetic_law).unwrap();
        assert_eq!(out.law, "fleet-synthetic-canary");
        // The fleet synthetic law's minimum is one crash plus one drain.
        assert_eq!(out.plan.events.len(), 2);
        for skip in 0..out.plan.events.len() {
            let mut fewer = out.plan.events.clone();
            fewer.remove(skip);
            assert!(
                fleet_synthetic_law(&out.plan.with_events(fewer)).is_none(),
                "not 1-minimal at index {skip}"
            );
        }
    }

    #[test]
    fn shrunk_fleet_plan_round_trips_through_the_repro_file_format() {
        let full = fleet_plan(0xF1EE7);
        let out = shrink_fleet_plan(&full, fleet_synthetic_law).unwrap();
        let back = FleetChaosPlan::from_json(&out.plan.to_json()).unwrap();
        assert_eq!(back, out.plan);
        assert!(
            fleet_synthetic_law(&back).is_some(),
            "parsed repro still fails"
        );
    }

    fn attack_plan(seed: u64) -> AttackPlan {
        crate::adversary::plan_for(None, 4, seed)
    }

    #[test]
    fn attack_plans_shrink_to_a_one_minimal_burst_dodge_triple() {
        let full = attack_plan(0xBAD);
        assert!(
            adversary_synthetic_law(&full).is_some(),
            "seed must fail the adversary synthetic law to start ({} actions)",
            full.events.len()
        );
        let out = shrink_attack_plan(&full, adversary_synthetic_law).unwrap();
        assert_eq!(out.law, "adversary-synthetic-canary");
        // The adversary synthetic law's minimum is two bursts plus a dodge.
        assert_eq!(out.plan.events.len(), 3);
        for skip in 0..out.plan.events.len() {
            let mut fewer = out.plan.events.clone();
            fewer.remove(skip);
            assert!(
                adversary_synthetic_law(&out.plan.with_events(fewer)).is_none(),
                "not 1-minimal at index {skip}"
            );
        }
    }

    #[test]
    fn shrunk_attack_plan_round_trips_through_the_repro_file_format() {
        let full = attack_plan(0xBAD);
        let out = shrink_attack_plan(&full, adversary_synthetic_law).unwrap();
        let back = AttackPlan::from_json(&out.plan.to_json()).unwrap();
        assert_eq!(back, out.plan);
        assert!(
            adversary_synthetic_law(&back).is_some(),
            "parsed repro still fails"
        );
    }

    #[test]
    fn passing_attack_plan_reports_nothing_to_shrink() {
        let spec = workloads::AttackSpec::for_vm(2, 2_000 * MS).only(AttackKind::ThrashPhase);
        let p = AttackPlan::generate(5, &spec);
        assert!(matches!(
            shrink_attack_plan(&p, adversary_synthetic_law),
            Err(ShrinkError::PlanPasses)
        ));
    }

    #[test]
    fn passing_fleet_plan_reports_nothing_to_shrink() {
        let spec = ::fleet::FleetChaosSpec::for_fleet(2, 2_000 * MS).only(::fleet::HostOp::Degrade);
        let p = FleetChaosPlan::generate(3, &spec);
        assert!(matches!(
            shrink_fleet_plan(&p, fleet_synthetic_law),
            Err(ShrinkError::PlanPasses)
        ));
    }
}
