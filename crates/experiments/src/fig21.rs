//! Figure 21: vSched overhead when accurate abstraction cannot help.
//!
//! A 16-vCPU VM dedicatedly hosted on 16 cores: vCPUs are always active,
//! symmetric, UMA — the default abstraction is already correct, so vSched
//! can only cost. The paper measures a 0.7% average degradation.

use crate::common::{Mode, Scale};
use hostsim::{HostSpec, ScenarioBuilder, VmSpec};
use metrics::Table;
use simcore::{SimRng, SimTime};
use std::fmt;
use workloads::{build_loaded, is_latency_bench};

/// Benchmarks measured (the paper's Figure 21 set).
pub const BENCHES: [&str; 17] = [
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "facesim",
    "streamcluster",
    "fft",
    "ocean_cp",
    "radix",
    "img-dnn",
    "moses",
    "masstree",
    "silo",
    "shore",
    "specjbb",
    "sphinx",
    "xapian",
];

/// Figure 21 result: per bench, performance degradation fraction (positive
/// = worse under vSched).
pub struct Fig21 {
    /// Per-benchmark degradation.
    pub rows: Vec<(&'static str, f64)>,
}

impl Fig21 {
    /// Mean degradation across all benchmarks.
    pub fn mean(&self) -> f64 {
        self.rows.iter().map(|(_, d)| *d).sum::<f64>() / self.rows.len().max(1) as f64
    }
}

impl fmt::Display for Fig21 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 21: vSched overhead on a dedicated symmetric VM \
             (degradation vs CFS; positive = slower)"
        )?;
        let mut t = Table::new(&["benchmark", "degradation"]);
        for (bench, d) in &self.rows {
            t.row_owned(vec![bench.to_string(), format!("{:+.1}%", 100.0 * d)]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "mean degradation: {:+.2}% (paper: +0.7%)",
            100.0 * self.mean()
        )
    }
}

pub(crate) fn run_cell(bench: &str, mode: Mode, secs: u64, seed: u64) -> f64 {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(16), seed).vm(VmSpec::pinned(16, 0));
    let mut m = b.build();
    let (wl, handle) = build_loaded(bench, 16, 0.15, SimRng::new(seed ^ 0xDD));
    m.set_workload(vm, wl);
    mode.install(&mut m, vm);
    m.start();
    let dur = SimTime::from_secs(secs);
    m.run_until(dur);
    if is_latency_bench(bench) {
        // Lower is better: return inverse so "higher = better" throughout.
        1e12 / handle.p95_ns().unwrap_or(1).max(1) as f64
    } else {
        handle.rate(dur)
    }
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig21 {
    let secs = scale.secs(6, 25);
    let rows = BENCHES
        .iter()
        .map(|&bench| {
            let cfs = run_cell(bench, Mode::Cfs, secs, seed);
            let vs = run_cell(bench, Mode::Vsched, secs, seed);
            (bench, 1.0 - vs / cfs.max(1e-12))
        })
        .collect();
    Fig21 { rows }
}
