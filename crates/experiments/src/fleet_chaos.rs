//! Fleet-chaos cell: host failures, evacuation, and degraded mode.
//!
//! The `fleet` cell asks what vSched's probing buys at cluster scale;
//! this cell asks what survives when hosts themselves misbehave. Every
//! cell replays the *identical faulted day*: one SAP-shaped trace pinned
//! by its profile's canonical [`day_seed`], plus one
//! [`FleetChaosPlan`] (crashes, maintenance drains, transient
//! degradations) pinned by [`chaos_day_seed`] — both deliberately
//! independent of the suite's cell seeds, so every `(policy, guests)`
//! pair faces the same failures at the same instants. Three guest
//! configurations run per policy: CFS, vSched with probe-state handoff
//! on drain migrations, and vSched with cold re-probing — the
//! handoff-vs-cold p99 delta is the ablation the footer reports.
//!
//! Columns add the chaos counters: injected host failures, live
//! migrations, evacuations that exhausted their retry budget, and
//! admissions shed by fleet degraded mode. The checker's verdict covers
//! the migration laws (no placement onto a failed host, occupancy
//! conserved across each migration, every recovery timed).

use crate::common::Scale;
use crate::fleet::{HOSTS, THREADS_PER_HOST};
use ::fleet::{
    day_seed, policy_by_name, profile_by_name, spec_for_trace, synthesize, Cluster, FleetChaosPlan,
    FleetChaosSpec, GuestMode, MigrationMode, POLICIES,
};
use metrics::Table;
use std::fmt;

/// Generator profile whose canonical day the chaos cells replay.
pub const DAY_PROFILE: &str = "sap-diurnal";

/// Guest configurations per policy, in cell order.
pub const GUEST_CONFIGS: [ChaosGuests; 3] = [
    ChaosGuests::Cfs,
    ChaosGuests::VschedHandoff,
    ChaosGuests::VschedCold,
];

/// One guest configuration under fleet chaos.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosGuests {
    /// Plain CFS guests (migration mode is moot: no probe state exists).
    Cfs,
    /// vSched guests; drain migrations hand the victim's probed
    /// capacities to the destination host.
    VschedHandoff,
    /// vSched guests; every migration re-probes from scratch.
    VschedCold,
}

impl ChaosGuests {
    /// Stable cell-label / row-label suffix.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosGuests::Cfs => "cfs",
            ChaosGuests::VschedHandoff => "vsched-handoff",
            ChaosGuests::VschedCold => "vsched-cold",
        }
    }

    fn mode(&self) -> GuestMode {
        match self {
            ChaosGuests::Cfs => GuestMode::Cfs,
            _ => GuestMode::Vsched,
        }
    }

    fn migration(&self) -> MigrationMode {
        match self {
            ChaosGuests::VschedCold => MigrationMode::ColdReprobe,
            _ => MigrationMode::Handoff,
        }
    }
}

/// Seed the shared chaos plan is generated from: FNV-1a of a fixed tag,
/// overridable with `FLEET_CHAOS_SEED` so CI can sweep randomized days
/// (every cell in one run still shares whatever day the env pins).
pub fn chaos_day_seed() -> u64 {
    if let Ok(s) = std::env::var("FLEET_CHAOS_SEED") {
        if let Ok(n) = s.trim().parse::<u64>() {
            return n;
        }
    }
    day_seed("fleet-chaos-day")
}

/// The fault schedule every cell at this horizon replays.
pub fn plan_for(horizon_secs: u64) -> FleetChaosPlan {
    plan_for_seed(chaos_day_seed(), horizon_secs)
}

/// The fault schedule an explicit seed generates at this horizon (the
/// `suite --shrink-fleet` entry; the suite job itself pins its day with
/// [`plan_for`]).
pub fn plan_for_seed(seed: u64, horizon_secs: u64) -> FleetChaosPlan {
    let spec = FleetChaosSpec::for_fleet(HOSTS as u16, horizon_secs * 1_000_000_000);
    FleetChaosPlan::generate(seed, &spec)
}

/// One chaos cell's outcome.
#[derive(Debug, Clone)]
pub struct FleetChaosOutcome {
    /// VMs a policy successfully sited.
    pub placed: u64,
    /// VMs rejected — includes degraded-mode sheds.
    pub rejected: u64,
    /// Fleet-merged tail end-to-end latency (ms).
    pub p99_ms: f64,
    /// Tenants whose own p99 busted their tier's target, per tier.
    pub tier_slo_violations: [usize; 3],
    /// Host crash/drain events the plan injected.
    pub host_failures: u64,
    /// VMs live-migrated off a failing host.
    pub migrations: u64,
    /// Evacuations that exhausted their retry budget.
    pub evacuations_failed: u64,
    /// Admissions shed by fleet degraded mode.
    pub shed_admissions: u64,
    /// VMs still on a failed host at the horizon (must be 0).
    pub stranded: usize,
    /// Invariant violations (must be 0).
    pub violations: u64,
    /// Law name of the first violation, if any — the fleet shrinker's
    /// comparison key (not rendered in figure output).
    pub first_law: Option<String>,
}

/// Runs one `(policy, guests)` cell over the shared faulted day.
pub fn run_cell(
    policy: &'static str,
    guests: ChaosGuests,
    horizon_secs: u64,
    seed: u64,
) -> FleetChaosOutcome {
    run_plan(
        policy,
        guests,
        &plan_for(horizon_secs),
        horizon_secs * 1_000_000_000,
        seed,
    )
}

/// Runs one cell under an explicit chaos plan (the fleet shrinker and
/// `fleettrace replay --chaos-seed` shape drive arbitrary — typically
/// subset — plans through the very same cluster the seeded cell uses).
pub fn run_plan(
    policy: &'static str,
    guests: ChaosGuests,
    plan: &FleetChaosPlan,
    horizon_ns: u64,
    seed: u64,
) -> FleetChaosOutcome {
    let p = profile_by_name(DAY_PROFILE).expect("registered profile");
    let trace = synthesize(p, horizon_ns, day_seed(p.name));
    let spec = spec_for_trace(&trace, HOSTS, THREADS_PER_HOST);
    let mut c = Cluster::new(
        spec,
        guests.mode(),
        policy_by_name(policy).expect("registered policy"),
        seed,
    );
    c.set_chaos(plan.clone());
    c.set_migration_mode(guests.migration());
    outcome(c.run())
}

fn outcome(s: ::fleet::SloSummary) -> FleetChaosOutcome {
    FleetChaosOutcome {
        placed: s.placed,
        rejected: s.rejected,
        p99_ms: s.p99_ms,
        tier_slo_violations: s.tier_slo_violations,
        host_failures: s.host_failures,
        migrations: s.migrations,
        evacuations_failed: s.evacuations_failed,
        shed_admissions: s.shed_admissions,
        stranded: s.stranded,
        violations: s.violations,
        first_law: s.first_law.map(str::to_string),
    }
}

/// The rendered fleet-chaos grid: one row per `(policy, guests)`.
pub struct FleetChaos {
    /// Faults the shared plan injects (cell-independent).
    pub faults: usize,
    /// `(policy, outcome per GUEST_CONFIGS entry)` rows.
    pub rows: Vec<(&'static str, [FleetChaosOutcome; 3])>,
}

impl fmt::Display for FleetChaos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet chaos: host failures + evacuation on a replayed day \
             ({HOSTS}x{THREADS_PER_HOST} cluster, {} planned faults)",
            self.faults
        )?;
        let mut t = Table::new(&[
            "policy",
            "guests",
            "placed",
            "rejected",
            "p99 ms",
            "tier viol c/s/b",
            "failures",
            "migrated",
            "evac fail",
            "shed",
            "stranded",
            "violations",
        ]);
        for (policy, outs) in &self.rows {
            for (g, o) in GUEST_CONFIGS.iter().zip(outs.iter()) {
                t.row_owned(vec![
                    policy.to_string(),
                    g.label().to_string(),
                    o.placed.to_string(),
                    o.rejected.to_string(),
                    format!("{:.2}", o.p99_ms),
                    format!(
                        "{}/{}/{}",
                        o.tier_slo_violations[0],
                        o.tier_slo_violations[1],
                        o.tier_slo_violations[2]
                    ),
                    o.host_failures.to_string(),
                    o.migrations.to_string(),
                    o.evacuations_failed.to_string(),
                    o.shed_admissions.to_string(),
                    o.stranded.to_string(),
                    o.violations.to_string(),
                ]);
            }
        }
        write!(f, "{t}")?;
        for (policy, outs) in &self.rows {
            let handoff = &outs[1];
            let cold = &outs[2];
            write!(
                f,
                "\n{policy}: migration p99 handoff {:.2}ms vs cold-reprobe {:.2}ms \
                 ({:.2}x)",
                handoff.p99_ms,
                cold.p99_ms,
                handoff.p99_ms / cold.p99_ms.max(1e-9)
            )?;
        }
        Ok(())
    }
}

/// Runs the full policy × guest-config grid serially (legacy entry
/// point; the suite shards the same grid one cell per pair).
pub fn run(seed: u64, scale: Scale) -> FleetChaos {
    let horizon = scale.secs(4, 16);
    let rows = POLICIES
        .iter()
        .map(|&policy| {
            let outs: Vec<FleetChaosOutcome> = GUEST_CONFIGS
                .iter()
                .map(|&g| run_cell(policy, g, horizon, seed))
                .collect();
            (policy, outs.try_into().expect("three guest configs"))
        })
        .collect();
    FleetChaos {
        faults: plan_for(horizon).events.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_guest_config_survives_the_faulted_day_law_clean() {
        for &g in &GUEST_CONFIGS {
            let o = run_cell("worst-fit", g, 4, 11);
            assert!(o.host_failures > 0, "{}: plan never fired", g.label());
            assert_eq!(o.violations, 0, "{}: law broken", g.label());
            assert_eq!(o.stranded, 0, "{}: stranded VMs", g.label());
        }
    }

    #[test]
    fn all_cells_share_one_faulted_day() {
        // The failure schedule is pinned by chaos_day_seed, not the cell
        // seed: different policies and seeds see the same injections.
        let a = run_cell("first-fit", ChaosGuests::Cfs, 4, 1);
        let b = run_cell("worst-fit", ChaosGuests::VschedHandoff, 4, 2);
        assert_eq!(a.host_failures, b.host_failures);
    }

    #[test]
    fn chaos_cells_are_deterministic() {
        let digest = |o: &FleetChaosOutcome| {
            (
                o.placed,
                o.rejected,
                o.p99_ms.to_bits(),
                o.migrations,
                o.evacuations_failed,
                o.shed_admissions,
            )
        };
        let a = run_cell("probe-aware", ChaosGuests::VschedHandoff, 4, 7);
        let b = run_cell("probe-aware", ChaosGuests::VschedHandoff, 4, 7);
        assert_eq!(digest(&a), digest(&b));
    }
}
