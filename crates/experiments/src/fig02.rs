//! Figure 2: the impact of vCPU latency on latency-sensitive workloads.
//!
//! Two overcommitted VMs share a set of cores one-to-one; one runs
//! Tailbench apps at a low request rate, the other stresses every vCPU with
//! sysbench. The host scheduling quantum plays the role of the paper's
//! bandwidth-control + granularity tuning: it sets the vCPU latency (2, 4,
//! 8, 16 ms) without changing the 50% capacity split. The p95 tail latency
//! of each benchmark is reported normalized to the 16 ms setting — the
//! paper observes up to a 20× spread.

use crate::common::Scale;
use hostsim::{HostSpec, ScenarioBuilder, VmSpec};
use metrics::Table;
use simcore::time::MS;
use simcore::{SimRng, SimTime};
use std::fmt;
use workloads::{build_latency, work_ms, Stressor};

/// The vCPU latency settings swept (ns).
pub const LATENCIES_MS: [u64; 4] = [2, 4, 8, 16];

/// Benchmarks shown in the figure.
pub const BENCHES: [&str; 3] = ["img-dnn", "silo", "specjbb"];

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Benchmark name.
    pub bench: &'static str,
    /// With best-effort background tasks?
    pub best_effort: bool,
    /// vCPU latency setting (ms).
    pub latency_ms: u64,
    /// Measured p95 end-to-end latency (ns).
    pub p95_ns: u64,
}

/// Full result of the Figure 2 reproduction.
pub struct Fig02 {
    /// All measured cells.
    pub cells: Vec<Cell>,
}

impl Fig02 {
    /// p95 for a configuration.
    pub fn p95(&self, bench: &str, best_effort: bool, latency_ms: u64) -> u64 {
        self.cells
            .iter()
            .find(|c| {
                c.bench == bench && c.best_effort == best_effort && c.latency_ms == latency_ms
            })
            .map(|c| c.p95_ns)
            .unwrap_or(0)
    }
}

impl fmt::Display for Fig02 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2: p95 tail latency vs vCPU latency, normalized to 16 ms (lower is better)"
        )?;
        let mut t = Table::new(&["config", "2 ms", "4 ms", "8 ms", "16 ms"]);
        for &be in &[false, true] {
            for bench in BENCHES {
                let base = self.p95(bench, be, 16).max(1) as f64;
                let label = format!("{bench}{}", if be { " (+best-effort)" } else { "" });
                let row: Vec<String> = LATENCIES_MS
                    .iter()
                    .map(|&l| format!("{:.1}", 100.0 * self.p95(bench, be, l) as f64 / base))
                    .collect();
                t.row_owned(std::iter::once(label).chain(row).collect());
            }
        }
        write!(f, "{t}")
    }
}

/// Runs one cell: a 16-vCPU VM against a stressor VM with the host quantum
/// set to the target vCPU latency.
pub(crate) fn run_cell(
    bench: &'static str,
    best_effort: bool,
    latency_ms: u64,
    secs: u64,
    seed: u64,
) -> Cell {
    let n = 16;
    let mut host = HostSpec::flat(n);
    host.quantum_ns = latency_ms * MS;
    let (b, vm) = ScenarioBuilder::new(host, seed).vm(VmSpec::pinned(n, 0));
    let (b, stress_vm) = b.vm(VmSpec::pinned(n, 0));
    let mut m = b.build();
    // Very light offered load, as the paper configures it ("we reduced the
    // arrival rate of requests to minimize the delay on the runqueue while
    // waiting for other requests"): requests arrive far apart so each one
    // independently samples the vCPU activity phase.
    let service = match bench {
        "img-dnn" => work_ms(2.0),
        "silo" => work_ms(0.25),
        "specjbb" => work_ms(0.5),
        _ => unreachable!(),
    };
    let interarrival = 30.0 * simcore::time::MS as f64;
    let _ = service;
    let (mut wl, stats) = {
        let (w, h) = build_latency(
            bench,
            4,
            interarrival,
            best_effort,
            SimRng::new(seed ^ 0x51),
        );
        let stats = match h {
            workloads::Handle::Latency(s) => s,
            _ => unreachable!(),
        };
        (w, stats)
    };
    // Silence unused warning path: the workload moves into the machine.
    let _ = &mut wl;
    m.set_workload(vm, wl);
    let (sw, _ss) = Stressor::new(n, work_ms(10.0));
    m.set_workload(stress_vm, Box::new(sw));
    m.start();
    m.run_until(SimTime::from_secs(secs));
    let p95_ns = stats.borrow().e2e.p95();
    Cell {
        bench,
        best_effort,
        latency_ms,
        p95_ns,
    }
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig02 {
    let secs = scale.secs(20, 120);
    let mut cells = Vec::new();
    for &be in &[false, true] {
        for bench in BENCHES {
            for &l in &LATENCIES_MS {
                cells.push(run_cell(bench, be, l, secs, seed));
            }
        }
    }
    Fig02 { cells }
}
