//! Table 4: canneal throughput — activity-aware vs activity-unaware ivh.
//!
//! The paper reports canneal execution times with ivh's pre-waking
//! migration vs a direct migration that ignores target activity; migration
//! delay (the task parked on a still-inactive vCPU's runqueue) erodes the
//! harvest. We report completion rates (inverse execution time) for the
//! same sweep of thread counts.

use crate::common::{Mode, Scale};
use crate::fig15::build_machine;
use metrics::Table;
use simcore::{SimRng, SimTime};
use std::fmt;
use vsched::VschedConfig;
use workloads::build;

/// Thread counts swept (as in the paper's Table 4).
pub const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

/// Table 4 result: per thread count, (activity-unaware, activity-aware)
/// completion rates.
pub struct Table4 {
    /// Completion rates.
    pub cells: Vec<(f64, f64)>,
    /// ivh migration statistics from the aware run (attempted, completed,
    /// abandoned).
    pub aware_stats: (u64, u64, u64),
}

impl Table4 {
    /// Speedup of activity-aware over unaware at a thread index.
    pub fn speedup(&self, idx: usize) -> f64 {
        let (unaware, aware) = self.cells[idx];
        aware / unaware.max(1e-12)
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 4: canneal throughput under ivh (rounds/s; higher is better)"
        )?;
        let mut t = Table::new(&["#threads", "1", "2", "4", "8", "16"]);
        let row = |which: usize| -> Vec<String> {
            self.cells
                .iter()
                .map(|c| format!("{:.1}", if which == 0 { c.0 } else { c.1 }))
                .collect()
        };
        t.row_owned(
            std::iter::once("ivh (activity-unaware)".to_string())
                .chain(row(0))
                .collect(),
        );
        t.row_owned(
            std::iter::once("ivh (activity-aware)".to_string())
                .chain(row(1))
                .collect(),
        );
        writeln!(f, "{t}")?;
        let (att, done, abandoned) = self.aware_stats;
        writeln!(
            f,
            "activity-aware run: {att} attempts, {done} completed, {abandoned} abandoned"
        )
    }
}

pub(crate) fn run_cell(
    threads: usize,
    prewake: bool,
    secs: u64,
    seed: u64,
) -> (f64, (u64, u64, u64)) {
    let (mut m, vm) = build_machine(seed);
    let (wl, handle) = build("canneal", threads, SimRng::new(seed ^ 0xE2));
    m.set_workload(vm, wl);
    let mut cfg = VschedConfig {
        bvs: false,
        rwc: false,
        ..VschedConfig::full()
    };
    if !prewake {
        cfg = cfg.without_ivh_prewake();
    }
    Mode::install_custom(&mut m, vm, cfg);
    m.start();
    let dur = SimTime::from_secs(secs);
    m.run_until(dur);
    let stats = &m.vms[vm].guest.kern.stats;
    (
        handle.rate(dur),
        (
            stats.ivh_attempts.get(),
            stats.ivh_completed.get(),
            stats.ivh_abandoned.get(),
        ),
    )
}

/// Runs the table.
pub fn run(seed: u64, scale: Scale) -> Table4 {
    let secs = scale.secs(8, 30);
    let mut cells = Vec::new();
    let mut aware_stats = (0, 0, 0);
    for &t in &THREADS {
        let (unaware, _) = run_cell(t, false, secs, seed);
        let (aware, st) = run_cell(t, true, secs, seed);
        if t == 1 {
            // Report harvest statistics where harvesting actually happens.
            aware_stats = st;
        }
        cells.push((unaware, aware));
    }
    Table4 { cells, aware_stats }
}
