//! Table 2: vtop probing time.
//!
//! Measures how long vtop's full probe and validation passes take on the
//! rcvm (12 vCPUs with a stacked pair) and hpvm (32 vCPUs across 4
//! sockets) profiles. The paper reports sub-second times with validation up
//! to 4× faster than full probing, and notes that validation takes longer
//! on rcvm than on the larger hpvm because confirming stacking requires
//! waiting out the transfer timeout.

use crate::common::Scale;
use crate::profiles::{hpvm, rcvm, Profile};
use metrics::{fmt_ns, Table};
use simcore::SimTime;
use std::fmt;
use vsched::VschedConfig;
use workloads::{work_ms, Stressor};

/// Table 2 result (all times in ns).
pub struct Table2 {
    /// rcvm full probe duration.
    pub rcvm_full_ns: u64,
    /// rcvm validation duration.
    pub rcvm_validate_ns: u64,
    /// hpvm full probe duration.
    pub hpvm_full_ns: u64,
    /// hpvm validation duration.
    pub hpvm_validate_ns: u64,
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2: vtop probing time")?;
        let mut t = Table::new(&[
            "config",
            "rcvm-full",
            "rcvm-validate",
            "hpvm-full",
            "hpvm-validate",
        ]);
        t.row_owned(vec![
            "time".into(),
            fmt_ns(self.rcvm_full_ns),
            fmt_ns(self.rcvm_validate_ns),
            fmt_ns(self.hpvm_full_ns),
            fmt_ns(self.hpvm_validate_ns),
        ]);
        write!(f, "{t}")
    }
}

pub(crate) fn measure(mut p: Profile, secs: u64) -> (u64, u64) {
    let vm = p.vm;
    // A light background so the system resembles the evaluation setting.
    let (wl, _s) = Stressor::new(2, work_ms(5.0));
    p.machine.set_workload(vm, Box::new(wl));
    p.machine.with_vm(vm, |g, pl| {
        vsched::install(g, pl, VschedConfig::probers_only())
    });
    p.machine.start();
    p.machine.run_until(SimTime::from_secs(secs));
    let vs = vsched::instance(&mut p.machine.vms[vm].guest).expect("installed");
    (
        vs.vtop.last_full_ns.unwrap_or(0),
        vs.vtop.last_validate_ns.unwrap_or(0),
    )
}

/// Runs the table.
pub fn run(seed: u64, scale: Scale) -> Table2 {
    let secs = scale.secs(12, 30);
    let (rcvm_full_ns, rcvm_validate_ns) = measure(rcvm(seed), secs);
    let (hpvm_full_ns, hpvm_validate_ns) = measure(hpvm(seed), secs);
    Table2 {
        rcvm_full_ns,
        rcvm_validate_ns,
        hpvm_full_ns,
        hpvm_validate_ns,
    }
}
