//! Figure 13: effective LLC-aware optimizations with vtop.
//!
//! 32 vCPUs are pinned across two sockets (16 per socket). Two instances of
//! a communication-heavy benchmark run side by side; with correct socket
//! topology, wake placement confines each instance's threads to one LLC
//! domain, cutting cross-socket IPIs (paper: −99%), raising IPC (+14.5%),
//! and lifting throughput (+26% on average).

use crate::common::{Mode, Scale};
use hostsim::{HostSpec, Pinning, ScenarioBuilder, VmSpec};
use metrics::Table;
use simcore::{SimRng, SimTime};
use std::fmt;
use vsched::VschedConfig;
use workloads::{
    work_ms, Handle, LatencyServer, LatencyServerCfg, MsgPairs, MsgPairsCfg, MultiWorkload,
    Pipeline, PipelineCfg,
};

/// Benchmarks in the figure.
pub const BENCHES: [&str; 3] = ["dedup", "nginx", "hackbench"];

/// One configuration's measurements (two instances summed).
#[derive(Debug, Clone)]
pub struct LlcCell {
    /// Combined completion rate of the two instances.
    pub throughput: f64,
    /// IPC proxy: work done per cycle consumed.
    pub ipc: f64,
    /// Cross-LLC IPIs.
    pub ipis: u64,
}

/// Figure 13 result: per benchmark, (CFS, CFS+vtop).
pub struct Fig13 {
    /// Rows per benchmark.
    pub rows: Vec<(&'static str, LlcCell, LlcCell)>,
}

impl fmt::Display for Fig13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 13: LLC-aware placement with vtop (two instances per benchmark, \
             normalized to CFS = 100)"
        )?;
        let mut t = Table::new(&["benchmark", "throughput", "IPC", "IPIs"]);
        for (name, cfs, vtop) in &self.rows {
            t.row_owned(vec![
                name.to_string(),
                format!("{:.1}", 100.0 * vtop.throughput / cfs.throughput.max(1e-12)),
                format!("{:.1}", 100.0 * vtop.ipc / cfs.ipc.max(1e-12)),
                format!("{:.1}", 100.0 * vtop.ipis as f64 / cfs.ipis.max(1) as f64),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Builds one instance of a communication-heavy benchmark with its own
/// communication group.
fn instance(
    name: &str,
    threads: usize,
    group: u32,
    rng: SimRng,
) -> (Box<dyn guestos::Workload>, Handle) {
    match name {
        "dedup" => {
            let (wl, s) = Pipeline::new(
                PipelineCfg::new(
                    vec![
                        (threads.div_ceil(3), work_ms(0.8)),
                        (threads.div_ceil(3), work_ms(1.2)),
                        (threads.div_ceil(3), work_ms(0.6)),
                    ],
                    u64::MAX / 4,
                )
                .with_comm_group(group),
                rng,
            );
            (Box::new(wl), Handle::Throughput(s))
        }
        "nginx" => {
            let service = work_ms(0.5);
            let interarrival = service / 1024.0 / threads as f64 / 0.5;
            let (wl, s) = LatencyServer::new(
                LatencyServerCfg::new(threads, service, interarrival).with_comm_group(group),
                rng,
            );
            (Box::new(wl), Handle::Latency(s))
        }
        "hackbench" => {
            let mut cfg = MsgPairsCfg::new((threads / 4).max(1), 2, 2, u64::MAX / 4);
            cfg.comm_group_base = group;
            let (wl, s) = MsgPairs::new(cfg, rng);
            (Box::new(wl), Handle::Throughput(s))
        }
        other => panic!("not an LLC benchmark: {other}"),
    }
}

pub(crate) fn run_cell(name: &'static str, with_vtop: bool, secs: u64, seed: u64) -> LlcCell {
    // Two sockets x 16 cores, SMT off: vCPU i on thread i.
    let host = HostSpec::new(2, 16, 1);
    let (b, vm) = ScenarioBuilder::new(host, seed).vm(VmSpec {
        nr_vcpus: 32,
        pinning: Pinning::OneToOne((0..32).collect()),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let mut m = b.build();
    let (a, ha) = instance(name, 8, 50, SimRng::new(seed ^ 0xC1));
    let (bw, hb) = instance(name, 8, 60, SimRng::new(seed ^ 0xC2));
    m.set_workload(vm, Box::new(MultiWorkload::new(vec![a, bw])));
    if with_vtop {
        Mode::install_custom(&mut m, vm, VschedConfig::probers_only());
    }
    m.start();
    let dur = SimTime::from_secs(secs);
    m.run_until(dur);
    let throughput = ha.rate(dur) + hb.rate(dur);
    let cycles = m.vms[vm].cycles.value().max(1.0);
    let work: f64 = (0..32).map(|i| m.vcpus[m.gv(vm, i)].delivered_work).sum();
    LlcCell {
        throughput,
        ipc: work / cycles,
        ipis: m.vms[vm].guest.kern.stats.cross_llc_ipis.get(),
    }
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig13 {
    let secs = scale.secs(8, 40);
    let rows = BENCHES
        .iter()
        .map(|&name| {
            (
                name,
                run_cell(name, false, secs, seed),
                run_cell(name, true, secs, seed),
            )
        })
        .collect();
    Fig13 { rows }
}
