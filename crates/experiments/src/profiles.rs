//! The paper's two representative cloud VM profiles (§5.1).
//!
//! * **rcvm** — resource-constrained VM: 12 vCPUs. vCPUs 0–9 sit on 5 SMT
//!   pairs, vCPUs 10–11 are stacked on one thread. Two vCPUs (8, 9) are
//!   stragglers; the remaining eight split into the four capacity/latency
//!   types — hchl, hcll, lchl, lcll (two each). The hcll type has double
//!   the capacity and one third the latency of lchl.
//! * **hpvm** — high-performance VM: 32 vCPUs in 4 groups of 8, each group
//!   4 SMT pairs in its own socket. Three groups mirror rcvm's four types;
//!   the last group's vCPUs dedicatedly own their threads. No stragglers,
//!   no stacking.
//!
//! Capacity and activity are shaped with steady host-level contention (a
//! competing load per thread sets the share) plus per-thread scheduling
//! quanta (which set the inactive-period length — the role the paper's
//! granularity sysctls play). Steady contention keeps vCPU latency present
//! at any load, as co-located tenants do on the paper's testbed.

use guestos::GuestConfig;
use hostsim::{HostSpec, Machine, Pinning, ScenarioBuilder, VmSpec};
use simcore::time::MS;

/// vCPU capacity/latency types used by both profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcpuType {
    /// High capacity (0.8), high latency (6 ms inactive periods).
    Hchl,
    /// High capacity (0.8), low latency (2 ms).
    Hcll,
    /// Low capacity (0.4), high latency (6 ms).
    Lchl,
    /// Low capacity (0.4), low latency (3 ms).
    Lcll,
    /// Straggler: ~5% capacity.
    Straggler,
    /// Dedicated: owns its thread outright.
    Dedicated,
    /// Stacked with a sibling vCPU on one thread.
    Stacked,
}

impl VcpuType {
    /// `(competing host-load weight, thread quantum)` shaping this type;
    /// `None` = no competing load.
    pub fn contention(&self) -> Option<(u64, u64)> {
        match self {
            // share 0.8, inactive periods ~6 ms.
            VcpuType::Hchl => Some((256, 6 * MS)),
            // share 0.8, inactive periods ~2 ms.
            VcpuType::Hcll => Some((256, 2 * MS)),
            // share 0.4, inactive periods ~6 ms.
            VcpuType::Lchl => Some((1536, 6 * MS)),
            // share 0.4, inactive periods ~3 ms.
            VcpuType::Lcll => Some((1536, 3 * MS)),
            // share ~0.03 ("extremely low capacity").
            VcpuType::Straggler => Some((31 * 1024, 4 * MS)),
            VcpuType::Dedicated | VcpuType::Stacked => None,
        }
    }
}

/// A built profile: machine plus the VM index of the profiled guest.
pub struct Profile {
    /// The machine.
    pub machine: Machine,
    /// The profiled VM.
    pub vm: usize,
    /// vCPU type per vCPU.
    pub types: Vec<VcpuType>,
}

/// vCPU types of the rcvm profile, in vCPU order.
pub fn rcvm_types() -> Vec<VcpuType> {
    use VcpuType::*;
    vec![
        Hchl, Hchl, Hcll, Hcll, Lchl, Lchl, Lcll, Lcll, Straggler, Straggler, Stacked, Stacked,
    ]
}

/// Builds the rcvm: 12 vCPUs on one socket's SMT pairs plus a stacked pair.
pub fn rcvm(seed: u64) -> Profile {
    // Host: 1 socket × 8 cores × SMT2 = 16 threads; vCPUs 0..9 on threads
    // 0..9 (5 SMT pairs), vCPUs 10, 11 stacked on thread 10.
    let host = HostSpec::new(1, 8, 2);
    let types = rcvm_types();
    let mut pins: Vec<usize> = (0..10).collect();
    pins.push(10);
    pins.push(10);
    let (b, vm) = ScenarioBuilder::new(host, seed).vm(VmSpec {
        nr_vcpus: 12,
        pinning: Pinning::OneToOne(pins),
        weight: 1024,
        bandwidth: None,
        guest_cfg: Some(GuestConfig::new(12)),
    });
    let mut machine = b.build();
    for (i, ty) in types.iter().enumerate() {
        if let Some((w, q)) = ty.contention() {
            machine.add_host_load(i, w);
            machine.set_thread_quantum(i, q);
        }
    }
    Profile { machine, vm, types }
}

/// vCPU types of the hpvm profile, in vCPU order.
pub fn hpvm_types() -> Vec<VcpuType> {
    use VcpuType::*;
    let group = [Hchl, Hchl, Hcll, Hcll, Lchl, Lchl, Lcll, Lcll];
    let mut out = Vec::new();
    for _ in 0..3 {
        out.extend_from_slice(&group);
    }
    out.extend(std::iter::repeat_n(Dedicated, 8));
    out
}

/// Builds the hpvm: 32 vCPUs across 4 sockets (4 SMT pairs each).
pub fn hpvm(seed: u64) -> Profile {
    // Host: 4 sockets × 4 cores × SMT2 = 32 threads; group g occupies
    // threads g*8 .. g*8+8.
    let host = HostSpec::new(4, 4, 2);
    let types = hpvm_types();
    let pins: Vec<usize> = (0..32).collect();
    let (b, vm) = ScenarioBuilder::new(host, seed).vm(VmSpec {
        nr_vcpus: 32,
        pinning: Pinning::OneToOne(pins),
        weight: 1024,
        bandwidth: None,
        guest_cfg: Some(GuestConfig::new(32)),
    });
    let mut machine = b.build();
    for (i, ty) in types.iter().enumerate() {
        if let Some((w, q)) = ty.contention() {
            machine.add_host_load(i, w);
            machine.set_thread_quantum(i, q);
        }
    }
    Profile { machine, vm, types }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rcvm_shape_matches_paper() {
        let t = rcvm_types();
        assert_eq!(t.len(), 12);
        assert_eq!(t.iter().filter(|x| **x == VcpuType::Straggler).count(), 2);
        assert_eq!(t.iter().filter(|x| **x == VcpuType::Stacked).count(), 2);
        let p = rcvm(1);
        assert_eq!(p.machine.vms[p.vm].nr_vcpus, 12);
        // Stacked vCPUs share thread 10.
        assert_eq!(p.machine.vcpus[p.machine.gv(p.vm, 10)].affinity, vec![10]);
        assert_eq!(p.machine.vcpus[p.machine.gv(p.vm, 11)].affinity, vec![10]);
    }

    #[test]
    fn hpvm_shape_matches_paper() {
        let t = hpvm_types();
        assert_eq!(t.len(), 32);
        assert!(!t.contains(&VcpuType::Straggler));
        assert!(!t.contains(&VcpuType::Stacked));
        assert_eq!(t.iter().filter(|x| **x == VcpuType::Dedicated).count(), 8);
        let p = hpvm(1);
        // Four sockets on the host.
        assert_eq!(p.machine.spec.sockets, 4);
        // vCPU 8 sits in socket 1.
        assert_eq!(p.machine.spec.socket_of(8), 1);
    }

    #[test]
    fn hcll_vs_lchl_relation() {
        // hcll: double capacity, one third the latency of lchl (§5.1).
        let (hw, hq) = VcpuType::Hcll.contention().unwrap();
        let (lw, lq) = VcpuType::Lchl.contention().unwrap();
        let h_share = 1024.0 / (1024.0 + hw as f64);
        let l_share = 1024.0 / (1024.0 + lw as f64);
        assert!((h_share / l_share - 2.0).abs() < 1e-9);
        assert_eq!(lq / hq, 3);
    }
}
