//! Figures 18 and 19: overall improvement with vSched on rcvm and hpvm.
//!
//! Every suite workload runs under three configurations — stock CFS,
//! enhanced CFS (vProbers + rwc), and full vSched — on the two VM profiles
//! of §5.1. Throughput-oriented workloads report completion rate;
//! latency-sensitive ones report p95 tail latency. Everything is
//! normalized to CFS, as in the paper's bar charts.

use crate::common::{Mode, Scale};
use crate::profiles::{hpvm, rcvm, Profile};
use metrics::Table;
use simcore::{SimRng, SimTime};
use std::fmt;
use workloads::{build_loaded, is_latency_bench, LATENCY_BENCHES, THROUGHPUT_BENCHES};

/// Which profile to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileKind {
    /// Resource-constrained VM (12 vCPUs, stragglers + stacking).
    Rcvm,
    /// High-performance VM (32 vCPUs over 4 sockets).
    Hpvm,
}

/// One benchmark's results across the three modes.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Is this a tail-latency benchmark?
    pub latency: bool,
    /// Measured metric per mode (rate for throughput benches, p95 ns for
    /// latency benches): (CFS, enhanced CFS, vSched).
    pub values: (f64, f64, f64),
}

impl Row {
    /// Normalized performance vs CFS (higher = better for both kinds).
    pub fn normalized(&self) -> (f64, f64) {
        let (cfs, ecfs, vs) = self.values;
        if self.latency {
            // Lower latency is better: invert.
            (cfs / ecfs.max(1.0), cfs / vs.max(1.0))
        } else {
            (ecfs / cfs.max(1e-12), vs / cfs.max(1e-12))
        }
    }
}

/// Figure 18/19 result.
pub struct Overall {
    /// Which profile.
    pub profile: ProfileKind,
    /// Per-benchmark rows.
    pub rows: Vec<Row>,
}

impl Overall {
    /// Geometric-mean speedup of throughput benches under a mode
    /// (0 = enhanced, 1 = vsched).
    pub fn mean_throughput_gain(&self, which: usize) -> f64 {
        geo_mean(self.rows.iter().filter(|r| !r.latency).map(|r| {
            if which == 0 {
                r.normalized().0
            } else {
                r.normalized().1
            }
        }))
    }

    /// Geometric-mean latency reduction factor of latency benches.
    pub fn mean_latency_factor(&self, which: usize) -> f64 {
        geo_mean(self.rows.iter().filter(|r| r.latency).map(|r| {
            if which == 0 {
                r.normalized().0
            } else {
                r.normalized().1
            }
        }))
    }
}

fn geo_mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.filter(|x| *x > 0.0).collect();
    if v.is_empty() {
        return 1.0;
    }
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}

impl fmt::Display for Overall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.profile {
            ProfileKind::Rcvm => "Figure 18 (rcvm)",
            ProfileKind::Hpvm => "Figure 19 (hpvm)",
        };
        writeln!(
            f,
            "{name}: normalized performance vs CFS = 100 (higher is better)"
        )?;
        let mut t = Table::new(&["benchmark", "kind", "CFS", "Enhanced CFS", "vSched"]);
        for r in &self.rows {
            let (e, v) = r.normalized();
            t.row_owned(vec![
                r.bench.to_string(),
                if r.latency { "latency" } else { "throughput" }.into(),
                "100.0".into(),
                format!("{:.1}", 100.0 * e),
                format!("{:.1}", 100.0 * v),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "throughput gain:  enhanced CFS {:+.0}%, vSched {:+.0}%",
            100.0 * (self.mean_throughput_gain(0) - 1.0),
            100.0 * (self.mean_throughput_gain(1) - 1.0),
        )?;
        writeln!(
            f,
            "latency reduction: enhanced CFS {:.2}x, vSched {:.2}x",
            self.mean_latency_factor(0),
            self.mean_latency_factor(1),
        )
    }
}

fn make_profile(kind: ProfileKind, seed: u64) -> Profile {
    match kind {
        ProfileKind::Rcvm => rcvm(seed),
        ProfileKind::Hpvm => hpvm(seed),
    }
}

/// Runs one (benchmark, mode) cell on a profile.
pub fn run_cell(kind: ProfileKind, bench: &str, mode: Mode, secs: u64, seed: u64) -> f64 {
    let mut p = make_profile(kind, seed);
    let nr = p.machine.vms[p.vm].nr_vcpus;
    // Offered load sits just below the constrained profiles' effective
    // capacity (~30% of nominal): high enough that misplaced work tips
    // stock CFS toward saturation, which is precisely the regime the
    // paper's rcvm results live in.
    let (wl, handle) = build_loaded(bench, nr, 0.28, SimRng::new(seed ^ 0xAB));
    p.machine.set_workload(p.vm, wl);
    mode.install(&mut p.machine, p.vm);
    p.machine.start();
    let dur = SimTime::from_secs(secs);
    p.machine.run_until(dur);
    if is_latency_bench(bench) {
        handle.p95_ns().unwrap_or(0) as f64
    } else {
        handle.rate(dur)
    }
}

/// Runs the full figure for one profile, optionally restricted to a subset
/// of benchmarks (used by quick tests).
pub fn run_subset(kind: ProfileKind, benches: &[&'static str], seed: u64, scale: Scale) -> Overall {
    let secs = scale.secs(6, 25);
    let rows = benches
        .iter()
        .map(|&bench| {
            let cfs = run_cell(kind, bench, Mode::Cfs, secs, seed);
            let ecfs = run_cell(kind, bench, Mode::EnhancedCfs, secs, seed);
            let vs = run_cell(kind, bench, Mode::Vsched, secs, seed);
            Row {
                bench,
                latency: is_latency_bench(bench),
                values: (cfs, ecfs, vs),
            }
        })
        .collect();
    Overall {
        profile: kind,
        rows,
    }
}

/// Runs the full 31-workload figure.
pub fn run(kind: ProfileKind, seed: u64, scale: Scale) -> Overall {
    let benches: Vec<&'static str> = THROUGHPUT_BENCHES
        .iter()
        .chain(LATENCY_BENCHES.iter())
        .copied()
        .collect();
    run_subset(kind, &benches, seed, scale)
}
