//! Replayed-day cell: every placement policy × guest mode over one trace.
//!
//! The stochastic `fleet` job re-draws its churn from the cell seed, so
//! two policies never see *exactly* the same day. This cell fixes that:
//! a SAP-shaped trace is synthesized from the profile's canonical
//! [`day_seed`] — deliberately independent of the suite's cell seeds —
//! and compiled into the spec as [`ChurnModel::Trace`], so every
//! `(policy, guest mode)` pair replays the identical arrival/departure/
//! resize schedule. The cell seed still reaches workload phases and host
//! streams, but never the day itself. Reported columns add per-priority-
//! tier p99 (critical/standard/batch), the slice the trace's tenant
//! tiers exist for.
//!
//! [`ChurnModel::Trace`]: ::fleet::ChurnModel::Trace

use crate::common::Scale;
use crate::fleet::{HOSTS, THREADS_PER_HOST};
use ::fleet::{
    day_seed, policy_by_name, profile_by_name, spec_for_trace, synthesize, Cluster, GuestMode,
    POLICIES, PROFILES,
};
use metrics::Table;
use std::fmt;

/// Generator profiles the job grids over, in cell order.
pub fn profile_names() -> Vec<&'static str> {
    PROFILES.iter().map(|p| p.name).collect()
}

/// One replayed run's outcome (one policy, one guest mode).
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// VMs a policy successfully sited.
    pub placed: u64,
    /// VMs rejected (no host fit under the overcommit cap).
    pub rejected: u64,
    /// Requests completed fleet-wide.
    pub completed: u64,
    /// Fleet-merged median end-to-end latency (ms).
    pub p50_ms: f64,
    /// Fleet-merged tail end-to-end latency (ms).
    pub p99_ms: f64,
    /// Merged p99 per priority tier (critical, standard, batch), ms.
    pub tier_p99_ms: [f64; 3],
    /// Measured tenants per tier (same order).
    pub tier_tenants: [usize; 3],
    /// Tenants whose own p99 busted the spec's SLO.
    pub slo_violations: usize,
    /// Tenants with at least one completed request.
    pub measured_tenants: usize,
    /// Jain's fairness index over per-tenant completion rates.
    pub fairness: f64,
    /// Invariant violations (must be 0).
    pub violations: u64,
}

/// Runs one `(profile, policy)` cell: the profile's canonical day,
/// replayed once with CFS guests and once with vSched guests.
pub fn run_cell(
    policy: &'static str,
    profile: &'static str,
    horizon_secs: u64,
    seed: u64,
) -> (ReplayOutcome, ReplayOutcome) {
    let p = profile_by_name(profile).expect("registered profile");
    let trace = synthesize(p, horizon_secs * 1_000_000_000, day_seed(p.name));
    let spec = spec_for_trace(&trace, HOSTS, THREADS_PER_HOST);
    let run_mode = |mode| {
        let mut c = Cluster::new(
            spec.clone(),
            mode,
            policy_by_name(policy).expect("registered policy"),
            seed,
        );
        outcome(c.run())
    };
    (run_mode(GuestMode::Cfs), run_mode(GuestMode::Vsched))
}

fn outcome(s: ::fleet::SloSummary) -> ReplayOutcome {
    ReplayOutcome {
        placed: s.placed,
        rejected: s.rejected,
        completed: s.completed,
        p50_ms: s.p50_ms,
        p99_ms: s.p99_ms,
        tier_p99_ms: s.tier_p99_ms,
        tier_tenants: s.tier_tenants,
        slo_violations: s.slo_violations,
        measured_tenants: s.measured_tenants,
        fairness: s.fairness,
        violations: s.violations,
    }
}

/// The rendered replay cell grid: one `(CFS, vSched)` pair per
/// `(profile, policy)`, profiles outermost.
pub struct Replay {
    /// `(profile, policy, cfs, vsched)` rows.
    pub rows: Vec<(&'static str, &'static str, ReplayOutcome, ReplayOutcome)>,
}

impl fmt::Display for Replay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet replay: policies x guest modes over one trace per profile \
             ({HOSTS}x{THREADS_PER_HOST} cluster)"
        )?;
        let mut t = Table::new(&[
            "profile",
            "policy",
            "guests",
            "placed",
            "rejected",
            "p99 ms",
            "crit p99",
            "std p99",
            "batch p99",
            "SLO viol",
            "fairness",
            "violations",
        ]);
        for (profile, policy, cfs, vs) in &self.rows {
            for (mode, o) in [(GuestMode::Cfs, cfs), (GuestMode::Vsched, vs)] {
                t.row_owned(vec![
                    profile.to_string(),
                    policy.to_string(),
                    mode.label().to_string(),
                    o.placed.to_string(),
                    o.rejected.to_string(),
                    format!("{:.2}", o.p99_ms),
                    format!("{:.2}", o.tier_p99_ms[0]),
                    format!("{:.2}", o.tier_p99_ms[1]),
                    format!("{:.2}", o.tier_p99_ms[2]),
                    format!("{}/{}", o.slo_violations, o.measured_tenants),
                    format!("{:.3}", o.fairness),
                    o.violations.to_string(),
                ]);
            }
        }
        write!(f, "{t}")?;
        for (profile, policy, cfs, vs) in &self.rows {
            write!(
                f,
                "\n{profile}/{policy}: p99 ratio (vSched/CFS) {:.2}x",
                vs.p99_ms / cfs.p99_ms.max(1e-9)
            )?;
        }
        Ok(())
    }
}

/// Runs the full profile × policy grid serially (legacy entry point; the
/// suite shards the same grid one cell per `(profile, policy)`).
pub fn run(seed: u64, scale: Scale) -> Replay {
    let horizon = scale.secs(4, 16);
    let mut rows = Vec::new();
    for profile in profile_names() {
        for &policy in POLICIES.iter() {
            let (cfs, vs) = run_cell(policy, profile, horizon, seed);
            rows.push((profile, policy, cfs, vs));
        }
    }
    Replay { rows }
}
