//! Table 3: Masstree p95 latency breakdown under bvs.
//!
//! The Figure 14 setup, measured for Masstree only, decomposed into queue
//! time (runqueue latency), service time, and end-to-end — plus the
//! "bvs without the vCPU-state check" ablation that shows why prioritizing
//! recently-active sched_idle vCPUs matters when best-effort tasks are
//! present.

use crate::common::Scale;
use crate::fig14::run_cell;
use metrics::Table;
use std::fmt;
use vsched::VschedConfig;
use workloads::Handle;

/// One configuration's breakdown (ns).
#[derive(Debug, Clone, Copy)]
pub struct Breakdown {
    /// p95 queue time.
    pub queue_ns: u64,
    /// p95 service time.
    pub service_ns: u64,
    /// p95 end-to-end.
    pub e2e_ns: u64,
}

impl Breakdown {
    pub(crate) fn from_handle(h: &Handle) -> Breakdown {
        match h {
            Handle::Latency(s) => {
                let s = s.borrow();
                Breakdown {
                    queue_ns: s.queue.p95(),
                    service_ns: s.service.p95(),
                    e2e_ns: s.e2e.p95(),
                }
            }
            Handle::Throughput(_) => unreachable!("masstree is a latency benchmark"),
        }
    }
}

/// Table 3 result.
pub struct Table3 {
    /// Without best-effort tasks: (no bvs, bvs).
    pub no_be: (Breakdown, Breakdown),
    /// With best-effort tasks: (no bvs, bvs without state check, bvs).
    pub with_be: (Breakdown, Breakdown, Breakdown),
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 3: Masstree p95 latency breakdown (ms)")?;
        let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
        let mut t = Table::new(&[
            "setting",
            "no-BE: no bvs",
            "no-BE: bvs",
            "BE: no bvs",
            "BE: bvs (no state check)",
            "BE: bvs",
        ]);
        t.row_owned(vec![
            "Queue".into(),
            ms(self.no_be.0.queue_ns),
            ms(self.no_be.1.queue_ns),
            ms(self.with_be.0.queue_ns),
            ms(self.with_be.1.queue_ns),
            ms(self.with_be.2.queue_ns),
        ]);
        t.row_owned(vec![
            "Service".into(),
            ms(self.no_be.0.service_ns),
            ms(self.no_be.1.service_ns),
            ms(self.with_be.0.service_ns),
            ms(self.with_be.1.service_ns),
            ms(self.with_be.2.service_ns),
        ]);
        t.row_owned(vec![
            "End-2-end".into(),
            ms(self.no_be.0.e2e_ns),
            ms(self.no_be.1.e2e_ns),
            ms(self.with_be.0.e2e_ns),
            ms(self.with_be.1.e2e_ns),
            ms(self.with_be.2.e2e_ns),
        ]);
        write!(f, "{t}")
    }
}

pub(crate) fn bvs_cfg() -> VschedConfig {
    VschedConfig {
        ivh: false,
        rwc: false,
        ..VschedConfig::full()
    }
}

/// Runs the table.
pub fn run(seed: u64, scale: Scale) -> Table3 {
    let secs = scale.secs(15, 60);
    let cell = |be: bool, cfg: VschedConfig| -> Breakdown {
        let h = run_cell("masstree", be, cfg, secs, seed);
        Breakdown::from_handle(&h)
    };
    Table3 {
        no_be: (
            cell(false, VschedConfig::probers_only()),
            cell(false, bvs_cfg()),
        ),
        with_be: (
            cell(true, VschedConfig::probers_only()),
            cell(true, bvs_cfg().without_bvs_state_check()),
            cell(true, bvs_cfg()),
        ),
    }
}
