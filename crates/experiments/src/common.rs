//! Shared experiment infrastructure: scheduler configurations, scale
//! control, and result formatting helpers.

use hostsim::Machine;
use trace::{CheckReport, Collector, SharedCollector, TraceSink};
use vsched::VschedConfig;

/// The three scheduler configurations the paper compares (§5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Stock CFS with the default (inaccurate) vCPU abstraction.
    Cfs,
    /// CFS + vProbers + rwc: accurate abstraction feeding the *existing*
    /// heuristics.
    EnhancedCfs,
    /// Full vSched: enhanced CFS plus bvs and ivh.
    Vsched,
}

impl Mode {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Cfs => "CFS",
            Mode::EnhancedCfs => "Enhanced CFS",
            Mode::Vsched => "vSched",
        }
    }

    /// Installs this configuration into a VM (no-op for stock CFS).
    pub fn install(&self, m: &mut Machine, vm: usize) {
        let cfg = match self {
            Mode::Cfs => return,
            Mode::EnhancedCfs => VschedConfig::enhanced_cfs(),
            Mode::Vsched => VschedConfig::full(),
        };
        m.with_vm(vm, |g, p| vsched::install(g, p, cfg));
    }

    /// Installs a custom vSched configuration.
    pub fn install_custom(m: &mut Machine, vm: usize, cfg: VschedConfig) {
        m.with_vm(vm, |g, p| vsched::install(g, p, cfg));
    }
}

/// Experiment scale: `Smoke` is for determinism gates and CI smoke runs,
/// `Quick` shrinks durations for CI and bench runs, and `Paper` uses
/// durations closer to the paper's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal runs (a fraction of quick): enough simulated time to
    /// exercise every code path, short enough for debug-build gates.
    Smoke,
    /// Short runs (seconds of simulated time).
    Quick,
    /// Longer runs for tighter statistics.
    Paper,
}

impl Scale {
    /// Reads `VSCHED_SCALE=paper|quick|smoke` from the environment,
    /// defaulting to quick.
    pub fn from_env() -> Scale {
        match std::env::var("VSCHED_SCALE").as_deref() {
            Ok("paper") | Ok("full") => Scale::Paper,
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Quick,
        }
    }

    /// Parses a scale name (the suite binary's `--scale` flag).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }

    /// Scales a base duration (seconds of simulated time).
    pub fn secs(&self, quick: u64, paper: u64) -> u64 {
        match self {
            Scale::Smoke => (quick / 4).max(1),
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// A fresh shared trace collector with the invariant checker enabled and
/// no ring buffer: checked figure runs want the streaming verdict, not the
/// raw event log. Use one collector per [`Machine`] — vCPU and task IDs
/// restart from zero on every machine, so sharing a checker across
/// machines would cross their state.
pub fn checked_collector() -> SharedCollector {
    let (_, shared) = TraceSink::shared(Collector::default().with_checker());
    shared
}

/// Extracts the checker's report from a [`checked_collector`].
pub fn check_report(shared: &SharedCollector) -> CheckReport {
    shared
        .borrow()
        .checker
        .as_ref()
        .expect("collector has a checker")
        .report()
}

/// Formats a ratio as `xx.x%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Normalizes `value` against `base` as the paper's percentage plots do.
pub fn norm_pct(value: f64, base: f64) -> String {
    if base == 0.0 {
        return "n/a".into();
    }
    format!("{:.1}", 100.0 * value / base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_selects_duration() {
        assert_eq!(Scale::Quick.secs(5, 60), 5);
        assert_eq!(Scale::Paper.secs(5, 60), 60);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(Mode::Cfs.label(), "CFS");
        assert_eq!(Mode::EnhancedCfs.label(), "Enhanced CFS");
        assert_eq!(Mode::Vsched.label(), "vSched");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(norm_pct(50.0, 100.0), "50.0");
        assert_eq!(norm_pct(1.0, 0.0), "n/a");
    }
}
