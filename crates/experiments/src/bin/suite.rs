//! Runs the figure/table suite on the supervised deterministic runner.
//!
//! Figure outputs go to stdout (stable across `--jobs` values for a given
//! seed); the timing summary, failure report, and operational notes go to
//! stderr so output equality can be checked with a plain `diff`.
//!
//! ```text
//! cargo run --release -p experiments --bin suite -- [--jobs N] [--filter S]
//!     [--scale smoke|quick|paper] [--seed N] [--retries N] [--deadline-ms N]
//!     [--fleet-threads N] [--ckpt-dir PATH | --no-ckpt] [--resume] [--list]
//!     [--shrink SEED | --replay FILE]
//! ```
//!
//! * Cells run under supervision: a panicking or over-deadline cell is
//!   retried (same seed), and an exhausted cell fails **its job only** —
//!   the suite still exits 0 and prints the structured failure report to
//!   stderr (plus `FAILURES.json` next to the checkpoint). Supervision
//!   isolating a failure is the tool working, not a tool error.
//! * Finished jobs are checkpointed to `target/suite_ckpt/` (override with
//!   `--ckpt-dir`, disable with `--no-ckpt`); `--resume` replays them
//!   byte-for-byte and re-runs only the rest.
//! * `--shrink SEED` delta-debugs the chaos `FaultPlan` that seed generates
//!   down to a locally-minimal action subset failing the same checker law,
//!   written to `target/chaos_repro_<seed>.json`; `--replay FILE` re-runs a
//!   repro file and exits 0 iff the failure still reproduces.
//!   `--shrink-fleet SEED` does the same for the fleet-chaos cell's
//!   `FleetChaosPlan` (host crashes/drains/degradations), writing
//!   `target/fleet_chaos_repro_<seed>.json`; `--replay-fleet FILE` re-runs
//!   one. `--shrink-adversary SEED` shrinks the adversary cell's
//!   `AttackPlan` (scheduler-gaming guest actions), writing
//!   `target/adversary_repro_<seed>.json`; `--replay-adversary FILE`
//!   re-runs one. `VSCHED_SHRINK_LAW=synthetic` swaps the real checkers
//!   for the synthetic canary laws (tests/CI).
//! * `VSCHED_CANARY=1` appends the always-failing canary job (CI
//!   supervision smoke).
//! * `--list` prints every registered job id with its cell count and a
//!   one-line description, then exits.
//! * `--fleet-threads N` bounds the host-stepping worker pool inside the
//!   fleet/fleet-replay cells' clusters (default: available parallelism;
//!   `0` is rejected with a named-field error). Worker count never
//!   changes suite output — only wall clock.

use experiments::runner::{registry, run_suite, SuiteOptions};
use experiments::{chaos, checkpoint, shrink, Scale};
use hostsim::FaultPlan;
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: suite [--jobs N] [--filter SUBSTR[,SUBSTR...]] \
         [--scale smoke|quick|paper] [--seed N] [--retries N] [--deadline-ms N] \
         [--fleet-threads N] [--ckpt-dir PATH | --no-ckpt] [--resume] [--list] \
         [--shrink SEED | --replay FILE | --shrink-fleet SEED | --replay-fleet FILE \
         | --shrink-adversary SEED | --replay-adversary FILE]\n\
         \n\
         --fleet-threads N   host-stepping workers for fleet/fleet-replay \
         cells (default: available parallelism; output is byte-identical \
         at any worker count)"
    );
    std::process::exit(2);
}

/// Which oracle `--shrink`/`--replay` consult.
fn use_synthetic_law() -> bool {
    std::env::var("VSCHED_SHRINK_LAW").as_deref() == Ok("synthetic")
}

fn shrink_main(seed: u64, opts: &SuiteOptions) -> ! {
    let horizon = opts.scale.secs(6, 20);
    let (_, plan) = chaos::plan_for(horizon, seed);
    eprintln!(
        "# shrink: seed {seed} -> {} actions over {horizon}s horizon (law: {})",
        plan.events.len(),
        if use_synthetic_law() {
            "synthetic"
        } else {
            "chaos checker"
        },
    );
    let shrunk = if use_synthetic_law() {
        shrink::shrink_plan(&plan, shrink::synthetic_law)
    } else {
        shrink::shrink_plan(&plan, |p| shrink::chaos_checker_law(p, seed))
    };
    match shrunk {
        Ok(out) => {
            let path = PathBuf::from(format!("target/chaos_repro_{seed}.json"));
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(e) = checkpoint::atomic_write(&path, out.plan.to_json().as_bytes()) {
                eprintln!("# shrink: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
            eprintln!(
                "# shrink: law '{}' holds at {} of {} actions ({} oracle runs); \
                 repro written to {}",
                out.law,
                out.plan.events.len(),
                out.original_actions,
                out.oracle_runs,
                path.display()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("# shrink: {e}");
            std::process::exit(1);
        }
    }
}

fn shrink_fleet_main(seed: u64, opts: &SuiteOptions) -> ! {
    let horizon = opts.scale.secs(4, 16);
    let plan = experiments::fleet_chaos::plan_for_seed(seed, horizon);
    eprintln!(
        "# shrink-fleet: seed {seed} -> {} host faults over {horizon}s horizon (law: {})",
        plan.events.len(),
        if use_synthetic_law() {
            "synthetic"
        } else {
            "fleet chaos checker"
        },
    );
    let shrunk = if use_synthetic_law() {
        shrink::shrink_fleet_plan(&plan, shrink::fleet_synthetic_law)
    } else {
        shrink::shrink_fleet_plan(&plan, |p| shrink::fleet_chaos_checker_law(p, seed))
    };
    match shrunk {
        Ok(out) => {
            let path = PathBuf::from(format!("target/fleet_chaos_repro_{seed}.json"));
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(e) = checkpoint::atomic_write(&path, out.plan.to_json().as_bytes()) {
                eprintln!("# shrink-fleet: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
            eprintln!(
                "# shrink-fleet: law '{}' holds at {} of {} host faults ({} oracle runs); \
                 repro written to {}",
                out.law,
                out.plan.events.len(),
                out.original_events,
                out.oracle_runs,
                path.display()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("# shrink-fleet: {e}");
            std::process::exit(1);
        }
    }
}

fn replay_fleet_main(path: &str, opts: &SuiteOptions) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("# replay-fleet: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let plan = fleet::FleetChaosPlan::from_json(&text).unwrap_or_else(|e| {
        eprintln!("# replay-fleet: {path} is not a fleet chaos repro: {e}");
        std::process::exit(2);
    });
    let law = if use_synthetic_law() {
        shrink::fleet_synthetic_law(&plan)
    } else {
        shrink::fleet_chaos_checker_law(&plan, opts.seed)
    };
    match law {
        Some(l) => {
            eprintln!(
                "# replay-fleet: reproduced law '{l}' with {} host fault(s) from {path}",
                plan.events.len()
            );
            std::process::exit(0);
        }
        None => {
            eprintln!("# replay-fleet: plan from {path} passes every law; no reproduction");
            std::process::exit(1);
        }
    }
}

fn shrink_adversary_main(seed: u64, opts: &SuiteOptions) -> ! {
    let horizon = opts.scale.secs(8, 30);
    let plan = experiments::adversary::plan_for(None, horizon, seed);
    eprintln!(
        "# shrink-adversary: seed {seed} -> {} attack actions over {horizon}s horizon (law: {})",
        plan.events.len(),
        if use_synthetic_law() {
            "synthetic"
        } else {
            "adversary checker"
        },
    );
    let shrunk = if use_synthetic_law() {
        shrink::shrink_attack_plan(&plan, shrink::adversary_synthetic_law)
    } else {
        shrink::shrink_attack_plan(&plan, |p| shrink::adversary_checker_law(p, seed))
    };
    match shrunk {
        Ok(out) => {
            let path = PathBuf::from(format!("target/adversary_repro_{seed}.json"));
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(e) = checkpoint::atomic_write(&path, out.plan.to_json().as_bytes()) {
                eprintln!("# shrink-adversary: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
            eprintln!(
                "# shrink-adversary: law '{}' holds at {} of {} attack actions \
                 ({} oracle runs); repro written to {}",
                out.law,
                out.plan.events.len(),
                out.original_actions,
                out.oracle_runs,
                path.display()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("# shrink-adversary: {e}");
            std::process::exit(1);
        }
    }
}

fn replay_adversary_main(path: &str, opts: &SuiteOptions) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("# replay-adversary: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let plan = workloads::AttackPlan::from_json(&text).unwrap_or_else(|e| {
        eprintln!("# replay-adversary: {path} is not an attack-plan repro: {e}");
        std::process::exit(2);
    });
    let law = if use_synthetic_law() {
        shrink::adversary_synthetic_law(&plan)
    } else {
        shrink::adversary_checker_law(&plan, opts.seed)
    };
    match law {
        Some(l) => {
            eprintln!(
                "# replay-adversary: reproduced law '{l}' with {} attack action(s) from {path}",
                plan.events.len()
            );
            std::process::exit(0);
        }
        None => {
            eprintln!("# replay-adversary: plan from {path} passes every law; no reproduction");
            std::process::exit(1);
        }
    }
}

fn replay_main(path: &str, opts: &SuiteOptions) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("# replay: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let plan = FaultPlan::from_json(&text).unwrap_or_else(|e| {
        eprintln!("# replay: {path} is not a fault-plan repro: {e}");
        std::process::exit(2);
    });
    let law = if use_synthetic_law() {
        shrink::synthetic_law(&plan)
    } else {
        shrink::chaos_checker_law(&plan, opts.seed)
    };
    match law {
        Some(l) => {
            eprintln!(
                "# replay: reproduced law '{l}' with {} action(s) from {path}",
                plan.events.len()
            );
            std::process::exit(0);
        }
        None => {
            eprintln!("# replay: plan from {path} passes every law; no reproduction");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut opts = SuiteOptions {
        scale: Scale::from_env(),
        checkpoint: Some(PathBuf::from("target/suite_ckpt")),
        canary: std::env::var("VSCHED_CANARY")
            .map(|v| v == "1")
            .unwrap_or(false),
        ..SuiteOptions::default()
    };
    let mut list = false;
    let mut no_ckpt = false;
    let mut shrink_seed: Option<u64> = None;
    let mut replay_file: Option<String> = None;
    let mut shrink_fleet_seed: Option<u64> = None;
    let mut replay_fleet_file: Option<String> = None;
    let mut shrink_adversary_seed: Option<u64> = None;
    let mut replay_adversary_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--jobs" | "-j" => {
                opts.jobs = value("--jobs").parse().unwrap_or_else(|_| usage());
            }
            "--filter" | "-f" => opts.filter = Some(value("--filter")),
            "--scale" | "-s" => {
                opts.scale = Scale::parse(&value("--scale")).unwrap_or_else(|| usage());
            }
            "--seed" => {
                opts.seed = value("--seed").parse().unwrap_or_else(|_| usage());
            }
            "--retries" => {
                opts.supervise.retries = value("--retries").parse().unwrap_or_else(|_| usage());
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms").parse().unwrap_or_else(|_| usage());
                opts.supervise.deadline = Some(Duration::from_millis(ms));
            }
            "--fleet-threads" => match fleet::parse_fleet_threads(&value("--fleet-threads")) {
                Ok(n) => opts.fleet_threads = Some(n),
                Err(e) => {
                    eprintln!("--fleet-threads: {e}");
                    usage();
                }
            },
            "--ckpt-dir" => opts.checkpoint = Some(PathBuf::from(value("--ckpt-dir"))),
            "--no-ckpt" => no_ckpt = true,
            "--resume" => opts.resume = true,
            "--shrink" => {
                shrink_seed = Some(value("--shrink").parse().unwrap_or_else(|_| usage()));
            }
            "--replay" => replay_file = Some(value("--replay")),
            "--shrink-fleet" => {
                shrink_fleet_seed =
                    Some(value("--shrink-fleet").parse().unwrap_or_else(|_| usage()));
            }
            "--replay-fleet" => replay_fleet_file = Some(value("--replay-fleet")),
            "--shrink-adversary" => {
                shrink_adversary_seed = Some(
                    value("--shrink-adversary")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                );
            }
            "--replay-adversary" => replay_adversary_file = Some(value("--replay-adversary")),
            "--list" => list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if no_ckpt {
        opts.checkpoint = None;
    }

    if list {
        for j in registry() {
            println!("{:<8} {:>3} cells  {}", j.name, j.cells.len(), j.desc);
        }
        println!(
            "# fleet/fleet-replay cells shard host stepping across a cluster \
             pool; override with --fleet-threads N (default: available \
             parallelism, byte-identical output at any worker count)"
        );
        return;
    }
    if let Some(seed) = shrink_seed {
        shrink_main(seed, &opts);
    }
    if let Some(path) = replay_file {
        replay_main(&path, &opts);
    }
    if let Some(seed) = shrink_fleet_seed {
        shrink_fleet_main(seed, &opts);
    }
    if let Some(path) = replay_fleet_file {
        replay_fleet_main(&path, &opts);
    }
    if let Some(seed) = shrink_adversary_seed {
        shrink_adversary_main(seed, &opts);
    }
    if let Some(path) = replay_adversary_file {
        replay_adversary_main(&path, &opts);
    }

    let res = match run_suite(&opts) {
        Ok(res) => res,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // Failed jobs print nothing: healthy output stays byte-identical to a
    // clean run's, and the failure report below carries the rest.
    for r in res.reports.iter().filter(|r| r.ok) {
        println!("=== {} ===", r.name);
        println!("{}", r.output);
    }

    let cpu: f64 = res.reports.iter().map(|r| r.cpu_secs).sum();
    eprintln!(
        "# suite: {} jobs, {} cells ({} executed, {} jobs resumed), scale={}, seed={}, workers={}",
        res.reports.len(),
        res.reports.iter().map(|r| r.cells).sum::<usize>(),
        res.executed_cells,
        res.resumed_jobs,
        opts.scale.label(),
        opts.seed,
        res.workers,
    );
    for r in &res.reports {
        let status = if !r.ok {
            " FAILED"
        } else if r.from_checkpoint {
            " (resumed)"
        } else {
            ""
        };
        eprintln!(
            "#   {:<8} {:>4} cells {:>8.2}s cpu{status}",
            r.name, r.cells, r.cpu_secs
        );
    }
    for note in &res.notes {
        eprintln!("# note: {note}");
    }
    eprintln!(
        "# wall {:.2}s, cpu {:.2}s, speedup {:.2}x",
        res.wall_secs,
        cpu,
        cpu / res.wall_secs.max(1e-9)
    );

    if !res.failures.is_empty() {
        eprint!("{}", res.failures);
        let report_path = opts
            .checkpoint
            .as_deref()
            .map(|d| d.join("FAILURES.json"))
            .unwrap_or_else(|| PathBuf::from("target/suite_failures.json"));
        if let Some(parent) = report_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match checkpoint::atomic_write(&report_path, res.failures.to_json().as_bytes()) {
            Ok(()) => eprintln!("# failure report: {}", report_path.display()),
            Err(e) => eprintln!("# failure report unwritable ({e})"),
        }
        // Supervised failures are isolated, reported, and non-fatal by
        // design: exit 0 so one bad cell doesn't fail a whole CI suite run.
    }
}
