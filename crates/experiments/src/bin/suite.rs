//! Runs the figure/table suite on the deterministic parallel runner.
//!
//! Figure outputs go to stdout (stable across `--jobs` values for a given
//! seed); the timing summary goes to stderr so output equality can be
//! checked with a plain `diff`.
//!
//! ```text
//! cargo run --release -p experiments --bin suite -- [--jobs N] [--filter S]
//!     [--scale smoke|quick|paper] [--seed N] [--list]
//! ```

use experiments::runner::{registry, run_suite, SuiteOptions};
use experiments::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: suite [--jobs N] [--filter SUBSTR] [--scale smoke|quick|paper] [--seed N] [--list]"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = SuiteOptions {
        scale: Scale::from_env(),
        ..SuiteOptions::default()
    };
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--jobs" | "-j" => {
                opts.jobs = value("--jobs").parse().unwrap_or_else(|_| usage());
            }
            "--filter" | "-f" => opts.filter = Some(value("--filter")),
            "--scale" | "-s" => {
                opts.scale = Scale::parse(&value("--scale")).unwrap_or_else(|| usage());
            }
            "--seed" => {
                opts.seed = value("--seed").parse().unwrap_or_else(|_| usage());
            }
            "--list" => list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    if list {
        for j in registry() {
            println!("{} ({} cells)", j.name, j.cells.len());
        }
        return;
    }

    let res = run_suite(&opts);
    if res.reports.is_empty() {
        eprintln!("no jobs match filter {:?}", opts.filter);
        std::process::exit(1);
    }
    for r in &res.reports {
        println!("=== {} ===", r.name);
        println!("{}", r.output);
    }

    let cpu: f64 = res.reports.iter().map(|r| r.cpu_secs).sum();
    eprintln!(
        "# suite: {} jobs, {} cells, scale={}, seed={}, workers={}",
        res.reports.len(),
        res.reports.iter().map(|r| r.cells).sum::<usize>(),
        opts.scale.label(),
        opts.seed,
        res.workers,
    );
    for r in &res.reports {
        eprintln!(
            "#   {:<8} {:>4} cells {:>8.2}s cpu",
            r.name, r.cells, r.cpu_secs
        );
    }
    eprintln!(
        "# wall {:.2}s, cpu {:.2}s, speedup {:.2}x",
        res.wall_secs,
        cpu,
        cpu / res.wall_secs.max(1e-9)
    );
}
