//! Crash-safe suite checkpoints.
//!
//! A suite run is a bag of deterministic jobs; killing it halfway used to
//! discard everything. This module persists each job's rendered output the
//! moment its last cell completes, so `suite --resume` replays finished
//! work from disk and re-executes only what is missing or failed.
//!
//! # Granularity
//!
//! The unit of checkpointing is one *job* (figure/table): cell parts are
//! typed in-memory values merged by the job's reducer, so the durable form
//! of "these cells are done" is the job's reduced output. A job whose
//! cells all completed is replayed byte-for-byte from the checkpoint; a
//! job interrupted mid-flight (or with failed cells) re-runs all of its
//! cells — each cell's seed is a pure function of its identity, so the
//! re-run merges into exactly the bytes the uninterrupted run would have
//! produced.
//!
//! # Crash safety
//!
//! Every write is write-temp-then-rename on the same directory, so a
//! `kill -9` leaves either the old file or the new file, never a torn one.
//! The manifest is rewritten (atomically) after each job lands; a job file
//! not yet recorded in the manifest is simply ignored on resume.
//!
//! # Keying
//!
//! A checkpoint is only valid for the exact run configuration that wrote
//! it. The manifest records `(code version, base seed, scale, filter)`;
//! any mismatch on resume discards the checkpoint rather than risk mixing
//! outputs across configurations. The code version comes from
//! `git describe --always --dirty` when available.

use simcore::json::Json;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// FNV-1a over the output bytes; guards a checkpointed job file against
/// truncation or manual edits.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The run configuration a checkpoint is keyed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptKey {
    /// `git describe --always --dirty`, or `"unversioned"`.
    pub version: String,
    /// Base seed.
    pub seed: u64,
    /// Scale label (`smoke`/`quick`/`paper`).
    pub scale: String,
    /// Filter string (empty for a full run).
    pub filter: String,
}

impl CkptKey {
    /// The current code version for keying (best effort; a missing `git`
    /// binary or repo degrades to a constant, which still protects the
    /// common seed/scale/filter mismatches).
    pub fn current_version() -> String {
        std::process::Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unversioned".to_string())
    }
}

/// One checkpointed job entry.
#[derive(Debug, Clone)]
struct JobEntry {
    file: String,
    bytes: u64,
    fnv: u64,
}

/// An open checkpoint directory.
#[derive(Debug)]
pub struct Checkpoint {
    dir: PathBuf,
    key: CkptKey,
    jobs: BTreeMap<String, JobEntry>,
}

/// Atomically replaces `path` with `bytes` (write temp + rename).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

impl Checkpoint {
    /// Opens (creating if needed) a checkpoint directory for this key,
    /// starting empty: any existing manifest is superseded on the first
    /// [`Checkpoint::record`].
    pub fn create(dir: impl Into<PathBuf>, key: CkptKey) -> std::io::Result<Checkpoint> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Checkpoint {
            dir,
            key,
            jobs: BTreeMap::new(),
        })
    }

    /// Opens a checkpoint directory for resuming. Returns the checkpoint
    /// plus the set of jobs it can replay; a missing, unparsable, or
    /// mismatched-key manifest yields an empty (but still writable)
    /// checkpoint and a human-readable note saying why.
    pub fn resume(
        dir: impl Into<PathBuf>,
        key: CkptKey,
    ) -> std::io::Result<(Checkpoint, Option<String>)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let manifest = dir.join("MANIFEST.json");
        let text = match fs::read_to_string(&manifest) {
            Ok(t) => t,
            Err(_) => {
                return Ok((
                    Checkpoint {
                        dir,
                        key,
                        jobs: BTreeMap::new(),
                    },
                    Some("no checkpoint manifest; starting fresh".into()),
                ))
            }
        };
        let mut ck = Checkpoint {
            dir,
            key,
            jobs: BTreeMap::new(),
        };
        match ck.parse_manifest(&text) {
            Ok(()) => Ok((ck, None)),
            Err(why) => {
                ck.jobs.clear();
                Ok((ck, Some(why)))
            }
        }
    }

    fn parse_manifest(&mut self, text: &str) -> Result<(), String> {
        let doc = Json::parse(text).map_err(|e| format!("corrupt manifest: {e}"))?;
        let s = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("manifest missing {k}"))
        };
        let on_disk = CkptKey {
            version: s("version")?,
            seed: doc
                .get("seed")
                .and_then(|v| v.as_u64())
                .ok_or("manifest missing seed")?,
            scale: s("scale")?,
            filter: s("filter")?,
        };
        if on_disk != self.key {
            return Err(format!(
                "checkpoint key mismatch (have {:?}, want {:?}); starting fresh",
                on_disk, self.key
            ));
        }
        let jobs = doc.get("jobs").ok_or("manifest missing jobs")?.clone();
        let Json::Obj(map) = jobs else {
            return Err("manifest jobs not an object".into());
        };
        for (name, entry) in map {
            let u = |k: &str| entry.get(k).and_then(|v| v.as_u64());
            let file = entry
                .get("file")
                .and_then(|v| v.as_str())
                .ok_or("job entry missing file")?
                .to_string();
            self.jobs.insert(
                name,
                JobEntry {
                    file,
                    bytes: u("bytes").ok_or("job entry missing bytes")?,
                    fnv: u("fnv").ok_or("job entry missing fnv")?,
                },
            );
        }
        Ok(())
    }

    /// Loads one job's checkpointed output, verifying size and hash.
    /// `None` means the job must re-execute (absent, torn, or tampered).
    pub fn load(&self, job: &str) -> Option<String> {
        let entry = self.jobs.get(job)?;
        let bytes = fs::read(self.dir.join(&entry.file)).ok()?;
        if bytes.len() as u64 != entry.bytes || fnv64(&bytes) != entry.fnv {
            return None;
        }
        String::from_utf8(bytes).ok()
    }

    /// Records one finished job: writes its output atomically, then
    /// rewrites the manifest atomically. After this returns, a kill at any
    /// point leaves the job replayable.
    pub fn record(&mut self, job: &str, output: &str) -> std::io::Result<()> {
        let file = format!("{job}.out");
        atomic_write(&self.dir.join(&file), output.as_bytes())?;
        self.jobs.insert(
            job.to_string(),
            JobEntry {
                file,
                bytes: output.len() as u64,
                fnv: fnv64(output.as_bytes()),
            },
        );
        self.write_manifest()
    }

    fn write_manifest(&self) -> std::io::Result<()> {
        let jobs = Json::Obj(
            self.jobs
                .iter()
                .map(|(name, e)| {
                    (
                        name.clone(),
                        Json::obj([
                            ("file", e.file.as_str().into()),
                            ("bytes", Json::Uint(e.bytes)),
                            ("fnv", Json::Uint(e.fnv)),
                        ]),
                    )
                })
                .collect(),
        );
        let doc = Json::obj([
            ("version", self.key.version.as_str().into()),
            ("seed", Json::Uint(self.key.seed)),
            ("scale", self.key.scale.as_str().into()),
            ("filter", self.key.filter.as_str().into()),
            ("jobs", jobs),
        ]);
        atomic_write(&self.dir.join("MANIFEST.json"), doc.render().as_bytes())
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Names of jobs the checkpoint can replay.
    pub fn replayable(&self) -> Vec<String> {
        self.jobs.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vsched_ckpt_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn key() -> CkptKey {
        CkptKey {
            version: "test-v1".into(),
            seed: 42,
            scale: "smoke".into(),
            filter: "fig03".into(),
        }
    }

    #[test]
    fn record_then_resume_replays() {
        let dir = tmpdir("roundtrip");
        let mut ck = Checkpoint::create(&dir, key()).unwrap();
        ck.record("fig03", "fig03 output\nline 2\n").unwrap();
        ck.record("fig11", "fig11 output\n").unwrap();

        let (resumed, note) = Checkpoint::resume(&dir, key()).unwrap();
        assert_eq!(note, None);
        assert_eq!(
            resumed.load("fig03").as_deref(),
            Some("fig03 output\nline 2\n")
        );
        assert_eq!(resumed.load("fig11").as_deref(), Some("fig11 output\n"));
        assert_eq!(resumed.load("fig12"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_discards_checkpoint() {
        let dir = tmpdir("keymismatch");
        let mut ck = Checkpoint::create(&dir, key()).unwrap();
        ck.record("fig03", "output").unwrap();
        for other in [
            CkptKey { seed: 43, ..key() },
            CkptKey {
                scale: "quick".into(),
                ..key()
            },
            CkptKey {
                filter: String::new(),
                ..key()
            },
            CkptKey {
                version: "test-v2".into(),
                ..key()
            },
        ] {
            let (resumed, note) = Checkpoint::resume(&dir, other).unwrap();
            assert!(note.unwrap().contains("mismatch"));
            assert_eq!(resumed.load("fig03"), None);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_job_file_re_executes() {
        let dir = tmpdir("tamper");
        let mut ck = Checkpoint::create(&dir, key()).unwrap();
        ck.record("fig03", "pristine output").unwrap();
        fs::write(dir.join("fig03.out"), "tampered").unwrap();
        let (resumed, _) = Checkpoint::resume(&dir, key()).unwrap();
        assert_eq!(resumed.load("fig03"), None, "hash mismatch must not replay");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_starts_fresh_but_stays_writable() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("MANIFEST.json"), "{not json").unwrap();
        let (mut ck, note) = Checkpoint::resume(&dir, key()).unwrap();
        assert!(note.unwrap().contains("corrupt"));
        assert!(ck.replayable().is_empty());
        ck.record("fig03", "fresh").unwrap();
        let (resumed, note) = Checkpoint::resume(&dir, key()).unwrap();
        assert_eq!(note, None);
        assert_eq!(resumed.load("fig03").as_deref(), Some("fresh"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = tmpdir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.out");
        atomic_write(&p, b"one").unwrap();
        atomic_write(&p, b"two").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"two");
        assert!(!p.with_extension("tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
