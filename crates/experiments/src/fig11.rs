//! Figure 11: impact of accurate vCPU capacity (vcap).
//!
//! (a) **Asymmetric capacity**: a 16-vCPU VM whose last four vCPUs have 2×
//! the capacity of the rest (DVFS — invisible to the guest's steal-based
//! view). Sysbench runs 4 CPU-bound threads. Under stock CFS the threads
//! spend less than half their time on the high-capacity vCPUs; with vcap
//! the scheduler steers them there (paper: 44% → 81%, +32% throughput).
//!
//! (b) **Symmetric capacity**: all 16 vCPUs share 50% of a core with a
//! competitor VM. Stock CFS keeps migrating tasks toward idle vCPUs that
//! merely *appear* stronger (steal is unobservable while idle); vcap's
//! stable estimates remove the motive (paper: 74% fewer migrations).

use crate::common::{Mode, Scale};
use hostsim::{HostSpec, ScenarioBuilder, ScriptAction, VmSpec};
use metrics::Table;
use simcore::{SimRng, SimTime};
use std::fmt;
use vsched::VschedConfig;
use workloads::{build, work_ms, Stressor};

/// One asymmetric-capacity measurement.
#[derive(Debug, Clone)]
pub struct AsymResult {
    /// Fraction of sysbench execution time spent on the high-capacity
    /// vCPUs (12..16).
    pub high_cap_fraction: f64,
    /// Sysbench events per second.
    pub throughput: f64,
    /// Per-vCPU share of delivered sysbench work (the paper's
    /// execution-distribution bars).
    pub distribution: Vec<f64>,
}

/// One symmetric-capacity measurement.
#[derive(Debug, Clone)]
pub struct SymResult {
    /// Total task migrations over the run.
    pub migrations: u64,
    /// Sysbench events per second.
    pub throughput: f64,
}

/// Figure 11 result.
pub struct Fig11 {
    /// (a) asymmetric, stock CFS.
    pub asym_cfs: AsymResult,
    /// (a) asymmetric, CFS + vcap.
    pub asym_vcap: AsymResult,
    /// (b) symmetric, stock CFS.
    pub sym_cfs: SymResult,
    /// (b) symmetric, CFS + vcap.
    pub sym_vcap: SymResult,
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 11a: asymmetric capacity (4 sysbench threads, last 4 vCPUs 2x faster)"
        )?;
        let mut t = Table::new(&["config", "time on high-cap vCPUs", "throughput (events/s)"]);
        t.row_owned(vec![
            "CFS".into(),
            format!("{:.0}%", 100.0 * self.asym_cfs.high_cap_fraction),
            format!("{:.0}", self.asym_cfs.throughput),
        ]);
        t.row_owned(vec![
            "CFS + vcap".into(),
            format!("{:.0}%", 100.0 * self.asym_vcap.high_cap_fraction),
            format!("{:.0}", self.asym_vcap.throughput),
        ]);
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "throughput improvement with vcap: {:+.1}%",
            100.0 * (self.asym_vcap.throughput / self.asym_cfs.throughput.max(1e-9) - 1.0)
        )?;
        writeln!(f)?;
        writeln!(f, "Figure 11b: symmetric capacity — adverse migrations")?;
        let mut t = Table::new(&["config", "migrations", "throughput (events/s)"]);
        t.row_owned(vec![
            "CFS".into(),
            self.sym_cfs.migrations.to_string(),
            format!("{:.0}", self.sym_cfs.throughput),
        ]);
        t.row_owned(vec![
            "CFS + vcap".into(),
            self.sym_vcap.migrations.to_string(),
            format!("{:.0}", self.sym_vcap.throughput),
        ]);
        writeln!(f, "{t}")?;
        let red = 1.0 - self.sym_vcap.migrations as f64 / self.sym_cfs.migrations.max(1) as f64;
        writeln!(f, "migration reduction with vcap: {:.0}%", 100.0 * red)
    }
}

pub(crate) fn run_asym(
    with_vcap: bool,
    secs: u64,
    seed: u64,
    check: Option<&trace::SharedCollector>,
) -> AsymResult {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(16), seed).vm(VmSpec::pinned(16, 0));
    let mut m = b.build();
    if let Some(shared) = check {
        m.attach_trace(shared);
    }
    // First 12 cores at half frequency: last 4 vCPUs have 2x capacity.
    for core in 0..12 {
        m.at(SimTime::ZERO, ScriptAction::SetFreq { core, factor: 0.5 });
    }
    let (wl, handle) = build("sysbench", 4, SimRng::new(seed ^ 0xA1));
    m.set_workload(vm, wl);
    if with_vcap {
        Mode::install_custom(&mut m, vm, VschedConfig::probers_only());
    }
    m.start();
    let dur = SimTime::from_secs(secs);
    m.run_until(dur);
    // Execution distribution from per-vCPU delivered work (subtract prober
    // noise by ignoring sub-1% shares).
    let per_vcpu: Vec<f64> = (0..16)
        .map(|i| m.vcpus[m.gv(vm, i)].delivered_work)
        .collect();
    let total: f64 = per_vcpu.iter().sum();
    let distribution: Vec<f64> = per_vcpu.iter().map(|w| w / total.max(1.0)).collect();
    let high: f64 = distribution[12..].iter().sum();
    AsymResult {
        high_cap_fraction: high,
        throughput: handle.rate(dur),
        distribution,
    }
}

pub(crate) fn run_sym(
    with_vcap: bool,
    secs: u64,
    seed: u64,
    check: Option<&trace::SharedCollector>,
) -> SymResult {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(16), seed).vm(VmSpec::pinned(16, 0));
    let (b, stress_vm) = b.vm(VmSpec::pinned(16, 0));
    let mut m = b.build();
    if let Some(shared) = check {
        m.attach_trace(shared);
    }
    let (wl, handle) = build("sysbench", 4, SimRng::new(seed ^ 0xA2));
    m.set_workload(vm, wl);
    let (sw, _s) = Stressor::new(16, work_ms(10.0));
    m.set_workload(stress_vm, Box::new(sw));
    if with_vcap {
        Mode::install_custom(&mut m, vm, VschedConfig::probers_only());
    }
    m.start();
    let dur = SimTime::from_secs(secs);
    m.run_until(dur);
    SymResult {
        migrations: m.vms[vm].guest.kern.stats.total_migrations(),
        throughput: handle.rate(dur),
    }
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig11 {
    let secs = scale.secs(10, 40);
    Fig11 {
        asym_cfs: run_asym(false, secs, seed, None),
        asym_vcap: run_asym(true, secs, seed, None),
        sym_cfs: run_sym(false, secs, seed, None),
        sym_vcap: run_sym(true, secs, seed, None),
    }
}

/// Runs the figure with the streaming invariant checker attached to each
/// machine, returning one report per configuration.
pub fn run_checked(seed: u64, scale: Scale) -> (Fig11, Vec<trace::CheckReport>) {
    let secs = scale.secs(10, 40);
    let cols: Vec<_> = (0..4).map(|_| crate::common::checked_collector()).collect();
    let fig = Fig11 {
        asym_cfs: run_asym(false, secs, seed, Some(&cols[0])),
        asym_vcap: run_asym(true, secs, seed, Some(&cols[1])),
        sym_cfs: run_sym(false, secs, seed, Some(&cols[2])),
        sym_vcap: run_sym(true, secs, seed, Some(&cols[3])),
    };
    (fig, cols.iter().map(crate::common::check_report).collect())
}
