//! vCache: cache-aware placement under an LLC-thrashing neighbour.
//!
//! The fig13 co-location reshaped for the LLC occupancy model: the victim
//! VM spans both sockets (32 vCPUs one-to-one on a 2×16 host) and runs two
//! instances of a communication-heavy benchmark, while a neighbour VM
//! pinned to socket 1 streams through a working set larger than the LLC,
//! evicting whatever the victim keeps there. Three guest configurations
//! run the identical scenario:
//!
//! * **cfs** — stock CFS, blind to everything;
//! * **vsched** — full vSched (probers + bvs/ivh/rwc), which sees
//!   capacity, activity, and topology but *not* the cache;
//! * **vsched-cache-aware** — full vSched plus the vcache prober and
//!   cache-aware bvs, which steers small latency-sensitive wakeups onto
//!   the socket whose LLC is not being thrashed.
//!
//! The measured margin between the last two is the figure's point: the
//! cache abstraction moves *throughput*, not just IPC, because work on
//! the quiet socket completes at the un-evicted miss rate.

use crate::common::{check_report, checked_collector, Mode, Scale};
use hostsim::{HostSpec, Pinning, ScenarioBuilder, VmSpec};
use metrics::Table;
use simcore::{SimRng, SimTime};
use std::fmt;
use vsched::VschedConfig;
use workloads::{
    work_ms, Handle, LatencyServer, LatencyServerCfg, MsgPairs, MsgPairsCfg, MultiWorkload,
    Pipeline, PipelineCfg, Stressor,
};

/// Benchmarks in the figure (the fig13 set).
pub const BENCHES: [&str; 3] = ["dedup", "nginx", "hackbench"];

/// Guest configurations, in column order.
pub const MODES: [&str; 3] = ["cfs", "vsched", "vsched-cache-aware"];

/// Victim working set: fits the LLC comfortably when resident.
const VICTIM_FOOTPRINT: f64 = 16.0 * 1024.0 * 1024.0;
/// Thrasher working set: larger than the socket LLC, so its occupancy
/// pressure evicts the victim's lines on the shared socket.
const THRASHER_FOOTPRINT: f64 = 96.0 * 1024.0 * 1024.0;

/// One configuration's measurements.
#[derive(Debug, Clone)]
pub struct VcacheCell {
    /// Combined completion rate of the two victim instances.
    pub throughput: f64,
    /// IPC proxy: work done per cycle consumed (victim VM).
    pub ipc: f64,
    /// bvs placements steered by a fresh LLC pressure estimate.
    pub cache_picks: u64,
    /// vcache sampling windows closed over the run.
    pub windows: u64,
    /// Invariant violations flagged by the trace checker (must be 0; the
    /// cache-pick margin law and the LLC conservation law run here).
    pub violations: u64,
}

/// The rendered figure: per benchmark, one cell per mode.
pub struct VcacheFig {
    /// Rows per benchmark, cells in [`MODES`] order.
    pub rows: Vec<(&'static str, Vec<VcacheCell>)>,
}

impl fmt::Display for VcacheFig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "vCache: cache-aware placement under an LLC-thrashing neighbour \
             (normalized to CFS = 100)"
        )?;
        let mut t = Table::new(&[
            "benchmark",
            "vsched tput",
            "cache-aware tput",
            "cache-aware IPC",
            "cache picks",
            "windows",
            "violations",
        ]);
        for (name, cells) in &self.rows {
            let cfs = &cells[0];
            let vs = &cells[1];
            let ca = &cells[2];
            let violations: u64 = cells.iter().map(|c| c.violations).sum();
            t.row_owned(vec![
                name.to_string(),
                format!("{:.1}", 100.0 * vs.throughput / cfs.throughput.max(1e-12)),
                format!("{:.1}", 100.0 * ca.throughput / cfs.throughput.max(1e-12)),
                format!("{:.1}", 100.0 * ca.ipc / cfs.ipc.max(1e-12)),
                format!("{}", ca.cache_picks),
                format!("{}", ca.windows),
                format!("{violations}"),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Builds one victim benchmark instance (the fig13 shapes, with dedup's
/// pipeline workers tagged latency-sensitive so bvs — and therefore
/// cache-aware bvs — places their wakeups).
fn instance(
    name: &str,
    threads: usize,
    group: u32,
    rng: SimRng,
) -> (Box<dyn guestos::Workload>, Handle) {
    match name {
        "dedup" => {
            // A closed-loop window (bounded buffers): few items circulate
            // through wide stages, so throughput is bound by the per-item
            // critical path — which an evicted LLC stretches — while the
            // workers stay small under PELT, so bvs (and therefore
            // cache-aware bvs) places every stage hand-off.
            let (wl, s) = Pipeline::new(
                PipelineCfg::new(
                    vec![
                        (threads, work_ms(0.25)),
                        (threads, work_ms(0.35)),
                        (threads, work_ms(0.2)),
                    ],
                    u64::MAX / 4,
                )
                .with_window(threads as u64 / 2)
                .with_comm_group(group)
                .with_latency_sensitive(),
                rng,
            );
            (Box::new(wl), Handle::Throughput(s))
        }
        "nginx" => {
            // Closed-loop (wrk style): each connection issues its next
            // request a think time after the previous response, so the
            // completion rate is bound by service speed — an evicted LLC
            // costs throughput directly. Think ≫ service keeps the worker
            // tasks small under PELT, so bvs places every request wakeup.
            let service = work_ms(1.0);
            let think = 3.0 * simcore::time::MS as f64;
            let (wl, s) = LatencyServer::new(
                LatencyServerCfg::new(5 * threads, service, think)
                    .with_closed_loop(2 * threads, think)
                    .with_comm_group(group),
                rng,
            );
            (Box::new(wl), Handle::Latency(s))
        }
        "hackbench" => {
            let mut cfg = MsgPairsCfg::new((threads / 4).max(1), 2, 2, u64::MAX / 4);
            cfg.comm_group_base = group;
            let (wl, s) = MsgPairs::new(cfg, rng);
            (Box::new(wl), Handle::Throughput(s))
        }
        other => panic!("not a vcache benchmark: {other}"),
    }
}

pub(crate) fn run_cell(name: &'static str, mode: &'static str, secs: u64, seed: u64) -> VcacheCell {
    // Two sockets x 16 cores, SMT off. The victim spans both sockets;
    // the thrasher owns half of socket 1 (threads 16..24).
    let host = HostSpec::new(2, 16, 1);
    let (b, victim) = ScenarioBuilder::new(host, seed).vm(VmSpec {
        nr_vcpus: 32,
        pinning: Pinning::OneToOne((0..32).collect()),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let (b, thrasher) = b.vm(VmSpec {
        nr_vcpus: 8,
        pinning: Pinning::OneToOne((16..24).collect()),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let mut m = b.build();
    let shared = checked_collector();
    m.attach_trace(&shared);
    let (a, ha) = instance(name, 8, 50, SimRng::new(seed ^ 0xC1));
    let (bw, hb) = instance(name, 8, 60, SimRng::new(seed ^ 0xC2));
    m.set_workload(victim, Box::new(MultiWorkload::new(vec![a, bw])));
    // The thrasher streams: steady CPU-bound events on every pinned vCPU.
    let (stress, _hs) = Stressor::new(8, work_ms(0.5));
    m.set_workload(thrasher, Box::new(stress));
    // Working sets arm the LLC occupancy model.
    m.set_vm_footprint(victim, VICTIM_FOOTPRINT);
    m.set_vm_footprint(thrasher, THRASHER_FOOTPRINT);
    match mode {
        "cfs" => {}
        "vsched" => Mode::install_custom(&mut m, victim, VschedConfig::full()),
        "vsched-cache-aware" => Mode::install_custom(&mut m, victim, VschedConfig::cache_aware()),
        other => panic!("not a vcache mode: {other}"),
    }
    m.start();
    let dur = SimTime::from_secs(secs);
    m.run_until(dur);
    let throughput = ha.rate(dur) + hb.rate(dur);
    let cycles = m.vms[victim].cycles.value().max(1.0);
    let work: f64 = (0..32)
        .map(|i| m.vcpus[m.gv(victim, i)].delivered_work)
        .sum();
    let (cache_picks, windows) = match vsched::instance(&mut m.vms[victim].guest) {
        Some(vs) => (vs.bvs_stats.cache_picks, vs.vcache.windows),
        None => (0, 0),
    };
    VcacheCell {
        throughput,
        ipc: work / cycles,
        cache_picks,
        windows,
        violations: check_report(&shared).violations,
    }
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> VcacheFig {
    let secs = scale.secs(8, 40);
    let rows = BENCHES
        .iter()
        .map(|&name| {
            (
                name,
                MODES
                    .iter()
                    .map(|&mode| run_cell(name, mode, secs, seed))
                    .collect(),
            )
        })
        .collect();
    VcacheFig { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure's acceptance criterion, in miniature: with the prober on,
    /// cache-aware bvs must actually steer placements (picks > 0), close
    /// its sampling windows, and trip zero checker laws — and the steering
    /// must not *lose* throughput against stock vSched.
    #[test]
    fn cache_aware_steers_and_stays_lawful() {
        let vs = run_cell("dedup", "vsched", 4, 42);
        let ca = run_cell("dedup", "vsched-cache-aware", 4, 42);
        assert!(ca.cache_picks > 0, "cache-aware bvs never steered a pick");
        assert!(ca.windows > 0, "vcache prober closed no windows");
        assert_eq!(ca.violations, 0, "checker flagged the cache-aware run");
        assert_eq!(vs.violations, 0, "checker flagged the stock run");
        assert!(
            ca.throughput > vs.throughput,
            "cache-aware ({}) did not beat stock vSched ({})",
            ca.throughput,
            vs.throughput
        );
    }
}
