//! Figure 16: adaptability of vSched to vCPU changes.
//!
//! Nginx runs in a 16-vCPU VM while the host configuration moves through
//! four phases (as a migrating/multi-tenant cloud would): dedicated →
//! overcommitted (a competing VM appears) → asymmetric capacity (half the
//! vCPUs get 2× the share without changing the total) → resource-
//! constrained (two vCPUs stacked, two crushed). Live throughput under
//! stock CFS is compared with vSched, which re-probes and adapts within
//! seconds.

use crate::common::{Mode, Scale};
use hostsim::{HostSpec, ScenarioBuilder, ScriptAction, VmSpec};
use metrics::Table;
use simcore::time::SEC;
use simcore::{SimRng, SimTime};
use std::fmt;
use workloads::{work_ms, LatencyServer, LatencyServerCfg};

/// Phase boundaries as fractions of the run.
const PHASES: [&str; 4] = ["dedicated", "overcommitted", "asymmetric", "constrained"];

/// Figure 16 result.
pub struct Fig16 {
    /// Per-second Nginx throughput under CFS.
    pub cfs_series: Vec<f64>,
    /// Per-second Nginx throughput under vSched.
    pub vsched_series: Vec<f64>,
    /// Seconds per phase.
    pub phase_secs: u64,
}

impl Fig16 {
    /// Mean throughput of a phase (skipping the first 2 s of transient).
    pub fn phase_mean(&self, series: &[f64], phase: usize) -> f64 {
        let from = (phase as u64 * self.phase_secs + 2) as usize;
        let to = ((phase as u64 + 1) * self.phase_secs) as usize;
        let window = &series[from.min(series.len())..to.min(series.len())];
        window.iter().sum::<f64>() / window.len().max(1) as f64
    }
}

impl fmt::Display for Fig16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 16: Nginx live throughput through host phase changes (req/s)"
        )?;
        let mut t = Table::new(&["phase", "CFS", "vSched", "vSched/CFS"]);
        for (i, name) in PHASES.iter().enumerate() {
            let c = self.phase_mean(&self.cfs_series, i);
            let v = self.phase_mean(&self.vsched_series, i);
            t.row_owned(vec![
                name.to_string(),
                format!("{c:.0}"),
                format!("{v:.0}"),
                format!("{:.2}x", v / c.max(1e-9)),
            ]);
        }
        write!(f, "{t}")
    }
}

pub(crate) fn run_mode(mode: Mode, phase_secs: u64, seed: u64) -> Vec<f64> {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(16), seed).vm(VmSpec::pinned(16, 0));
    let mut m = b.build();
    let p = phase_secs;
    // Phase 2 (overcommitted): host loads on every thread = a competing VM.
    for th in 0..16 {
        m.at(
            SimTime::from_secs(p),
            ScriptAction::AddLoad {
                thread: th,
                weight: 1024,
            },
        );
    }
    // Phase 3 (asymmetric): half the vCPUs get a 2x share — lighten the
    // competitor on threads 0-7, weigh it down on 8-15; total unchanged.
    for th in 0..8 {
        m.at(
            SimTime::from_secs(2 * p),
            ScriptAction::SetVcpuWeight {
                vm,
                vcpu: th,
                weight: 2048,
            },
        );
    }
    for th in 8..16 {
        m.at(
            SimTime::from_secs(2 * p),
            ScriptAction::SetVcpuWeight {
                vm,
                vcpu: th,
                weight: 683, // ~1/3 share against weight-1024 load
            },
        );
    }
    // Phase 4 (constrained): stack vCPU 1 onto vCPU 0's thread and crush
    // vCPUs 2 and 3 with heavy host load.
    m.at(
        SimTime::from_secs(3 * p),
        ScriptAction::SetAffinity {
            vm,
            vcpu: 1,
            threads: vec![0],
        },
    );
    for th in [2usize, 3] {
        m.at(
            SimTime::from_secs(3 * p),
            ScriptAction::AddLoad {
                thread: th,
                weight: 15 * 1024,
            },
        );
    }
    // Offered load ≈ 60% of the dedicated capacity: the overcommitted and
    // constrained phases are capacity-bound, so scheduling quality shows
    // up directly in completions.
    let service = work_ms(0.5);
    let interarrival = service / 1024.0 / 16.0 / 0.6;
    let cfg = LatencyServerCfg::new(16, service, interarrival).with_series(SEC);
    let (wl, stats) = LatencyServer::new(cfg, SimRng::new(seed ^ 0xF1));
    m.set_workload(vm, Box::new(wl));
    mode.install(&mut m, vm);
    m.start();
    m.run_until(SimTime::from_secs(4 * p));
    let out = stats
        .borrow()
        .series
        .as_ref()
        .map(|ts| ts.rates_per_sec())
        .unwrap_or_default();
    out
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig16 {
    let phase_secs = scale.secs(10, 30);
    let _ = SEC;
    Fig16 {
        cfs_series: run_mode(Mode::Cfs, phase_secs, seed),
        vsched_series: run_mode(Mode::Vsched, phase_secs, seed),
        phase_secs,
    }
}
