//! Figure 10: accuracy of vcap (EMA capacity tracking) and vtop (cache-line
//! latency matrix).
//!
//! (a) A vCPU's real capacity is stepped over time (share changes through
//! host contention); vcap's probed EMA must track the trend while smoothing
//! spikes. (b) An 8-vCPU VM with all three topology levels — two SMT pairs
//! in socket 0; one SMT pair and one stacked pair in socket 1 — is probed
//! by vtop; the measured latency matrix must show the paper's distinct
//! bands (≈6 ns SMT, ≈48 ns intra-socket, ≈113 ns cross-socket, ∞ for
//! stacking).

use crate::common::Scale;
use hostsim::{HostSpec, Machine, Pinning, ScenarioBuilder, ScriptAction, VmSpec};
use metrics::Table;
use simcore::time::SEC;
use simcore::{SimRng, SimTime};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use vsched::VschedConfig;
use workloads::{work_ms, Stressor};

/// One EMA-tracking sample.
#[derive(Debug, Clone, Copy)]
pub struct CapSample {
    /// Time (s).
    pub t_secs: f64,
    /// Ground-truth capacity of the observed vCPU.
    pub actual: f64,
    /// vcap's probed EMA capacity.
    pub ema: f64,
}

/// Figure 10 result.
pub struct Fig10 {
    /// (a) capacity tracking samples for vCPU 0.
    pub samples: Vec<CapSample>,
    /// (b) probed latency matrix (ns; `inf` = stacked, `-1` = inferred).
    pub matrix: Vec<Vec<f64>>,
    /// Mean absolute tracking error across samples (fraction of actual).
    pub tracking_error: f64,
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 10a: EMA capacity tracking (vCPU 0)")?;
        let mut t = Table::new(&["time (s)", "actual capacity", "probed EMA"]);
        for s in self.samples.iter().step_by(5) {
            t.row_owned(vec![
                format!("{:.0}", s.t_secs),
                format!("{:.0}", s.actual),
                format!("{:.0}", s.ema),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "mean tracking error: {:.1}%",
            100.0 * self.tracking_error
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "Figure 10b: probed cache-line transfer latency matrix (ns)"
        )?;
        let header: Vec<String> = std::iter::once("vCPU".to_string())
            .chain((0..self.matrix.len()).map(|i| i.to_string()))
            .collect();
        let href: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&href);
        for (i, row) in self.matrix.iter().enumerate() {
            let cells: Vec<String> = std::iter::once(i.to_string())
                .chain(row.iter().map(|&v| {
                    if v.is_infinite() {
                        "inf".to_string()
                    } else if v < 0.0 {
                        "-".to_string()
                    } else {
                        format!("{v:.0}")
                    }
                }))
                .collect();
            t.row_owned(cells);
        }
        write!(f, "{t}")
    }
}

/// Runs part (a): step the real capacity of vCPU 0 and sample the EMA.
pub(crate) fn run_capacity_tracking(seed: u64, secs: u64) -> Vec<CapSample> {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(2), seed).vm(VmSpec::pinned(2, 0));
    let mut m = b.build();
    // Capacity schedule for vCPU 0 via DVFS steps on core 0 (share styles
    // produce the same observable; frequency exercises the heavy phase).
    let steps: [(u64, f64); 5] = [
        (0, 1.0),
        (secs / 5, 0.5),
        (2 * secs / 5, 0.25),
        (3 * secs / 5, 0.75),
        (4 * secs / 5, 1.0),
    ];
    for (at, f) in steps {
        m.at(
            SimTime::from_secs(at),
            ScriptAction::SetFreq { core: 0, factor: f },
        );
    }
    let (wl, _s) = Stressor::new(2, work_ms(10.0));
    m.set_workload(vm, Box::new(wl));
    m.with_vm(vm, |g, p| {
        vsched::install(g, p, VschedConfig::probers_only())
    });
    // Sample every 500 ms.
    let samples: Rc<RefCell<Vec<CapSample>>> = Rc::new(RefCell::new(Vec::new()));
    let samples_ref = Rc::clone(&samples);
    let schedule: Vec<(u64, f64)> = steps.iter().map(|&(t, f)| (t * SEC, f * 1024.0)).collect();
    m.add_sampler(
        SEC / 2,
        Box::new(move |m: &Machine| {
            let now = m.q.now();
            let actual = schedule
                .iter()
                .rev()
                .find(|(t, _)| now.ns() >= *t)
                .map(|(_, c)| *c)
                .unwrap_or(1024.0);
            let ema = m.vms[0].guest.kern.vcpus[0].cap_override.unwrap_or(1024.0);
            samples_ref.borrow_mut().push(CapSample {
                t_secs: now.as_secs_f64(),
                actual,
                ema,
            });
        }),
    );
    m.start();
    m.run_until(SimTime::from_secs(secs));
    let out = samples.borrow().clone();
    out
}

/// Runs part (b): probe the 8-vCPU mixed topology.
pub(crate) fn run_matrix(seed: u64) -> Vec<Vec<f64>> {
    let host = HostSpec::new(2, 2, 2);
    let (b, vm) = ScenarioBuilder::new(host, seed).vm(VmSpec {
        nr_vcpus: 8,
        pinning: Pinning::OneToOne(vec![0, 1, 2, 3, 4, 5, 6, 6]),
        weight: 1024,
        bandwidth: None,
        guest_cfg: None,
    });
    let mut m = b.build();
    let (wl, _s) = Stressor::new(0, work_ms(1.0));
    m.set_workload(vm, Box::new(wl));
    m.with_vm(vm, |g, p| {
        vsched::install(g, p, VschedConfig::probers_only())
    });
    m.start();
    m.run_until(SimTime::from_secs(4));
    let vs = vsched::instance(&mut m.vms[vm].guest).expect("installed");
    vs.vtop.latency_matrix.clone()
}

/// Runs the full figure.
pub fn run(seed: u64, scale: Scale) -> Fig10 {
    let secs = scale.secs(75, 150);
    let samples = run_capacity_tracking(seed, secs);
    let matrix = run_matrix(seed);
    // Tracking error, ignoring a 2-sample settling window after each step.
    let _ = SimRng::new(seed);
    let err: Vec<f64> = samples
        .iter()
        .filter(|s| s.actual > 0.0)
        .map(|s| (s.ema - s.actual).abs() / s.actual)
        .collect();
    let tracking_error = if err.is_empty() {
        0.0
    } else {
        err.iter().sum::<f64>() / err.len() as f64
    };
    Fig10 {
        samples,
        matrix,
        tracking_error,
    }
}
