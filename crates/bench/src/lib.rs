//! Bench crate: every target under `benches/` regenerates one table or
//! figure of the vSched paper (see `DESIGN.md` for the experiment index),
//! printing the same rows/series the paper reports. `micro` contains
//! Criterion benchmarks of the simulator's own hot paths, and `ablations`
//! sweeps the design knobs DESIGN.md calls out.
//!
//! Quick runs by default; set `VSCHED_SCALE=paper` for longer, tighter
//! statistics.
