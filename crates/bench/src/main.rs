//! Offline wall-clock bench harness.
//!
//! Times the simulator's hot paths end to end — no criterion, no registry
//! deps, runs anywhere tier-1 builds — and writes the results to
//! `BENCH_vsched.json` at the repo root. Five micro benches plus the suite
//! wall clock:
//!
//! * `hostsim_dispatch` — events/sec through `Machine::run_until` on a
//!   two-VM contention scenario (the simulator's outer loop).
//! * `guest_context_switch` — guest context switches/sec under a
//!   wakeup-heavy hackbench workload (the guest scheduler's inner loop).
//! * `pelt_update` — ns per `Pelt::update` (the per-event decay math the
//!   fixed-point table optimizes).
//! * `fleet_step_rate` — events/sec stepping a churned 16-host fleet
//!   cluster in lockstep (the cluster-scaling baseline).
//! * `figure_fig03_quick` — one full quick-scale figure, as simulated
//!   seconds per wall second (everything composed).
//! * `suite` — the full figure/table suite, serial (`--jobs 1`) vs
//!   parallel (auto-sized pool): the speedup column is the tentpole's
//!   acceptance metric on multi-core runners.
//!
//! Scale comes from `VSCHED_SCALE` (default quick) or `--scale`; use
//! `--skip-suite` for a micro-only pass and `--out` to redirect the JSON.

use experiments::runner::{run_suite, SuiteOptions};
use experiments::Scale;
use guestos::pelt::{Pelt, PeltState};
use hostsim::{HostSpec, ScenarioBuilder, VmSpec};
use simcore::{SimRng, SimTime};
use std::fmt::Write as _;
use std::time::Instant;
use workloads::{build, work_ms, Stressor};

/// One micro bench: `units` operations in `secs` of wall time.
struct Micro {
    name: &'static str,
    /// What one unit is (for the JSON's self-description).
    unit: &'static str,
    units: u64,
    secs: f64,
}

impl Micro {
    fn per_sec(&self) -> f64 {
        self.units as f64 / self.secs.max(1e-12)
    }
}

/// Host event dispatch: two stressor VMs contending on 8 threads, counting
/// popped events per wall second.
fn bench_hostsim_dispatch(sim_secs: u64) -> Micro {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(8), 1).vm(VmSpec::pinned(8, 0));
    let (b, vm2) = b.vm(VmSpec::pinned(8, 0));
    let mut m = b.build();
    let (w0, _h0) = Stressor::new(8, work_ms(10.0));
    let (w1, _h1) = Stressor::new(8, work_ms(10.0));
    m.set_workload(vm, Box::new(w0));
    m.set_workload(vm2, Box::new(w1));
    m.start();
    let t0 = Instant::now();
    m.run_until(SimTime::from_secs(sim_secs));
    Micro {
        name: "hostsim_dispatch",
        unit: "events",
        units: m.events_dispatched,
        secs: t0.elapsed().as_secs_f64(),
    }
}

/// Guest context switches under a wakeup-heavy hackbench workload on an
/// overcommitted VM.
fn bench_guest_context_switch(sim_secs: u64) -> Micro {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(8), 1).vm(VmSpec::pinned(8, 0));
    let (b, stress_vm) = b.vm(VmSpec::pinned(8, 0));
    let mut m = b.build();
    let (wl, _h) = build("hackbench", 16, SimRng::new(7));
    m.set_workload(vm, wl);
    let (sw, _s) = Stressor::new(8, work_ms(10.0));
    m.set_workload(stress_vm, Box::new(sw));
    m.start();
    let t0 = Instant::now();
    m.run_until(SimTime::from_secs(sim_secs));
    let switches = m.vms[vm].guest.kern.stats.context_switches.get();
    Micro {
        name: "guest_context_switch",
        unit: "switches",
        units: switches,
        secs: t0.elapsed().as_secs_f64(),
    }
}

/// Raw PELT decay math: a realistic spread of update deltas cycling through
/// all three entity states.
fn bench_pelt_update(iters: u64) -> Micro {
    let mut p = Pelt::new(SimTime(0));
    let mut now = 0u64;
    // Deltas spanning sub-tick to multi-half-life gaps, like real runs mix.
    let deltas = [50_000u64, 350_000, 1_000_000, 4_000_000, 48_000_000];
    let states = [PeltState::Running, PeltState::Runnable, PeltState::Sleeping];
    let t0 = Instant::now();
    for i in 0..iters {
        now += deltas[(i % deltas.len() as u64) as usize];
        p.update(SimTime(now), states[(i % 3) as usize]);
    }
    let secs = t0.elapsed().as_secs_f64();
    // Keep the accumulated averages observable so the loop can't be
    // dead-code-eliminated.
    assert!(p.util() >= 0.0 && p.load() >= 0.0);
    Micro {
        name: "pelt_update",
        unit: "updates",
        units: iters,
        secs,
    }
}

/// Fleet steady-state step rate: a churned 16-host cluster of vSched
/// guests under the probe-aware policy, counting simulation events
/// dispatched across all hosts per wall second. The baseline any future
/// cluster-stepping perf work (sharded stepping, migration) measures
/// against.
fn bench_fleet_step_rate(sim_secs: u64) -> Micro {
    let spec = fleet::FleetSpec::small(16, 4, sim_secs);
    let mut c = fleet::Cluster::new(
        spec,
        fleet::GuestMode::Vsched,
        fleet::policy_by_name("probe-aware").expect("registered policy"),
        1,
    );
    let t0 = Instant::now();
    let s = c.run();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(s.violations, 0, "bench run must satisfy the fleet laws");
    assert!(s.placed > 0, "churn must place VMs");
    Micro {
        name: "fleet_step_rate",
        unit: "events",
        units: c.events_dispatched(),
        secs,
    }
}

/// One complete quick-scale figure: simulated seconds per wall second.
fn bench_figure_fig03() -> Micro {
    let t0 = Instant::now();
    let fig = experiments::fig03::run(42, Scale::Quick);
    let secs = t0.elapsed().as_secs_f64();
    assert!(fig.improvement() > 0.0);
    // Two modes at quick scale's 5 simulated seconds each.
    Micro {
        name: "figure_fig03_quick",
        unit: "simulated_secs",
        units: 10,
        secs,
    }
}

struct SuiteTiming {
    serial_secs: f64,
    parallel_secs: f64,
    workers: usize,
    jobs: usize,
    cells: usize,
}

/// The full suite, serial then parallel with an auto-sized pool.
fn bench_suite(scale: Scale) -> SuiteTiming {
    let serial = run_suite(&SuiteOptions {
        jobs: 1,
        scale,
        ..SuiteOptions::default()
    })
    .expect("unfiltered suite always matches");
    let parallel = run_suite(&SuiteOptions {
        jobs: 0,
        scale,
        ..SuiteOptions::default()
    })
    .expect("unfiltered suite always matches");
    for (s, p) in serial.reports.iter().zip(&parallel.reports) {
        assert_eq!(
            s.output, p.output,
            "suite output diverged between serial and parallel on {}",
            s.name
        );
    }
    SuiteTiming {
        serial_secs: serial.wall_secs,
        parallel_secs: parallel.wall_secs,
        workers: parallel.workers,
        jobs: parallel.reports.len(),
        cells: parallel.reports.iter().map(|r| r.cells).sum(),
    }
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

fn main() {
    let mut scale = Scale::from_env();
    let mut out = format!("{}/../../BENCH_vsched.json", env!("CARGO_MANIFEST_DIR"));
    let mut skip_suite = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("bad --scale {v:?} (smoke|quick|paper)");
                    std::process::exit(2);
                });
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--skip-suite" => skip_suite = true,
            other => {
                eprintln!("unknown flag: {other} (--scale, --out, --skip-suite)");
                std::process::exit(2);
            }
        }
    }

    // Sized so each micro bench runs long enough to time stably (hundreds
    // of ms) but the whole pass stays CI-friendly.
    eprintln!("# micro benches (scale-independent)");
    let micros = [
        bench_hostsim_dispatch(30),
        bench_guest_context_switch(30),
        bench_pelt_update(20_000_000),
        bench_fleet_step_rate(10),
        bench_figure_fig03(),
    ];
    for m in &micros {
        eprintln!(
            "#   {:<22} {:>12} {} in {:>7.3}s = {:>14.0} /s",
            m.name,
            m.units,
            m.unit,
            m.secs,
            m.per_sec()
        );
    }

    let suite = if skip_suite {
        None
    } else {
        eprintln!("# suite ({} scale), serial then parallel...", scale.label());
        let s = bench_suite(scale);
        if s.workers > 1 {
            eprintln!(
                "#   suite: {} jobs / {} cells, serial {:.2}s, parallel {:.2}s on {} workers = {:.2}x",
                s.jobs,
                s.cells,
                s.serial_secs,
                s.parallel_secs,
                s.workers,
                s.serial_secs / s.parallel_secs.max(1e-9)
            );
        } else {
            // One effective core: "parallel" ran on a single worker, so a
            // speedup figure would only measure pool overhead. Skip it
            // rather than publish a lying ~1.0x row.
            eprintln!(
                "#   suite: {} jobs / {} cells, serial {:.2}s, parallel {:.2}s on 1 worker \
                 (speedup skipped: single effective core)",
                s.jobs, s.cells, s.serial_secs, s.parallel_secs,
            );
        }
        Some(s)
    };

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"vsched-bench-v1\",");
    let _ = writeln!(j, "  \"scale\": \"{}\",", scale.label());
    let _ = writeln!(j, "  \"micro\": {{");
    for (i, m) in micros.iter().enumerate() {
        let comma = if i + 1 < micros.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    \"{}\": {{\"unit\": \"{}\", \"units\": {}, \"secs\": {}, \"per_sec\": {}}}{comma}",
            m.name,
            m.unit,
            m.units,
            json_f(m.secs),
            json_f(m.per_sec())
        );
    }
    let _ = writeln!(j, "  }},");
    match &suite {
        Some(s) => {
            let _ = writeln!(j, "  \"suite\": {{");
            let _ = writeln!(j, "    \"jobs\": {},", s.jobs);
            let _ = writeln!(j, "    \"cells\": {},", s.cells);
            let _ = writeln!(j, "    \"workers\": {},", s.workers);
            let _ = writeln!(j, "    \"serial_wall_secs\": {},", json_f(s.serial_secs));
            let _ = writeln!(
                j,
                "    \"parallel_wall_secs\": {},",
                json_f(s.parallel_secs)
            );
            if s.workers > 1 {
                let _ = writeln!(
                    j,
                    "    \"speedup\": {}",
                    json_f(s.serial_secs / s.parallel_secs.max(1e-9))
                );
            } else {
                let _ = writeln!(j, "    \"speedup\": null,");
                let _ = writeln!(
                    j,
                    "    \"speedup_note\": \"skipped: single effective core, \
                     parallel pool had 1 worker\""
                );
            }
            let _ = writeln!(j, "  }}");
        }
        None => {
            let _ = writeln!(j, "  \"suite\": null");
        }
    }
    let _ = writeln!(j, "}}");

    std::fs::write(&out, &j).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("# wrote {out}");
}
