//! Offline wall-clock bench harness.
//!
//! Times the simulator's hot paths end to end — no criterion, no registry
//! deps, runs anywhere tier-1 builds — and writes the results to
//! `BENCH_vsched.json` at the repo root. Six micro benches plus the suite
//! wall clock:
//!
//! * `hostsim_dispatch` — events/sec through `Machine::run_until` on a
//!   two-VM contention scenario (the simulator's outer loop).
//! * `guest_context_switch` — guest context switches/sec under a
//!   wakeup-heavy hackbench workload (the guest scheduler's inner loop).
//! * `pelt_update` — ns per `Pelt::update` (the per-event decay math the
//!   fixed-point table optimizes).
//! * `llc_advance` — ns per `LlcModel::advance` on a contended two-socket
//!   occupancy model (the lazy math behind `Machine::llc_pressure` and
//!   the vcache probes).
//! * `fleet_step_rate` — events/sec stepping a churned 16-host fleet
//!   cluster in lockstep, pinned to one worker (the serial baseline the
//!   sharded-stepping rows below measure against).
//! * `figure_fig03_quick` — one full quick-scale figure, as simulated
//!   seconds per wall second (everything composed).
//! * `fleet` rows — the same churned cluster at 16/64/256/1000 hosts,
//!   each stepped serially (`--fleet-threads 1`) and on the auto-sized
//!   host-stepping pool, with the summaries asserted identical. The
//!   256-host speedup is the sharded-stepping acceptance metric on
//!   multi-core runners; single-core runners report `speedup: null`.
//! * `suite` — the full figure/table suite, serial (`--jobs 1`) vs
//!   parallel (auto-sized pool).
//!
//! Scale comes from `VSCHED_SCALE` (default quick) or `--scale`; use
//! `--skip-suite` for a micro-only pass and `--out` to redirect the JSON.

use experiments::runner::{run_suite, SuiteOptions};
use experiments::Scale;
use guestos::pelt::{Pelt, PeltState};
use hostsim::{HostSpec, ScenarioBuilder, VmSpec};
use simcore::time::MS;
use simcore::{SimRng, SimTime};
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;
use workloads::{build, work_ms, Stressor};

/// One micro bench: `units` operations in `secs` of wall time.
struct Micro {
    name: &'static str,
    /// What one unit is (for the JSON's self-description).
    unit: &'static str,
    units: u64,
    secs: f64,
}

impl Micro {
    fn per_sec(&self) -> f64 {
        self.units as f64 / self.secs.max(1e-12)
    }
}

/// Host event dispatch: two stressor VMs contending on 8 threads, counting
/// popped events per wall second.
fn bench_hostsim_dispatch(sim_secs: u64) -> Micro {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(8), 1).vm(VmSpec::pinned(8, 0));
    let (b, vm2) = b.vm(VmSpec::pinned(8, 0));
    let mut m = b.build();
    let (w0, _h0) = Stressor::new(8, work_ms(10.0));
    let (w1, _h1) = Stressor::new(8, work_ms(10.0));
    m.set_workload(vm, Box::new(w0));
    m.set_workload(vm2, Box::new(w1));
    m.start();
    let t0 = Instant::now();
    m.run_until(SimTime::from_secs(sim_secs));
    Micro {
        name: "hostsim_dispatch",
        unit: "events",
        units: m.events_dispatched,
        secs: t0.elapsed().as_secs_f64(),
    }
}

/// Guest context switches under a wakeup-heavy hackbench workload on an
/// overcommitted VM.
fn bench_guest_context_switch(sim_secs: u64) -> Micro {
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(8), 1).vm(VmSpec::pinned(8, 0));
    let (b, stress_vm) = b.vm(VmSpec::pinned(8, 0));
    let mut m = b.build();
    let (wl, _h) = build("hackbench", 16, SimRng::new(7));
    m.set_workload(vm, wl);
    let (sw, _s) = Stressor::new(8, work_ms(10.0));
    m.set_workload(stress_vm, Box::new(sw));
    m.start();
    let t0 = Instant::now();
    m.run_until(SimTime::from_secs(sim_secs));
    let switches = m.vms[vm].guest.kern.stats.context_switches.get();
    Micro {
        name: "guest_context_switch",
        unit: "switches",
        units: switches,
        secs: t0.elapsed().as_secs_f64(),
    }
}

/// Raw PELT decay math: a realistic spread of update deltas cycling through
/// all three entity states.
fn bench_pelt_update(iters: u64) -> Micro {
    let mut p = Pelt::new(SimTime(0));
    let mut now = 0u64;
    // Deltas spanning sub-tick to multi-half-life gaps, like real runs mix.
    let deltas = [50_000u64, 350_000, 1_000_000, 4_000_000, 48_000_000];
    let states = [PeltState::Running, PeltState::Runnable, PeltState::Sleeping];
    let t0 = Instant::now();
    for i in 0..iters {
        now += deltas[(i % deltas.len() as u64) as usize];
        p.update(SimTime(now), states[(i % 3) as usize]);
    }
    let secs = t0.elapsed().as_secs_f64();
    // Keep the accumulated averages observable so the loop can't be
    // dead-code-eliminated.
    assert!(p.util() >= 0.0 && p.load() >= 0.0);
    Micro {
        name: "pelt_update",
        unit: "updates",
        units: iters,
        secs,
    }
}

/// Raw LLC occupancy math: `LlcModel::advance` on a contended two-socket
/// model whose sockets hold a mix of running and descheduled working
/// sets, so every call exercises the fill, decay, and over-capacity
/// eviction passes (the lazy path behind `Machine::llc_pressure` and
/// every vcache probe slice).
fn bench_llc_advance(iters: u64) -> Micro {
    const MB: f64 = 1024.0 * 1024.0;
    let mut llc = hostsim::llc::LlcModel::new(2, 32.0 * MB);
    for _ in 0..6 {
        llc.add_vm();
    }
    for vm in 0..6 {
        llc.set_footprint(SimTime::ZERO, vm, (4 + vm) as f64 * 4.0 * MB);
    }
    // Footprints total 114 MB against 64 MB of LLC; one VM per socket
    // stays descheduled so decay runs alongside fill and eviction.
    for vm in 0..3 {
        llc.on_sched(SimTime::ZERO, vm, 0);
    }
    for vm in 3..5 {
        llc.on_sched(SimTime::ZERO, vm, 1);
    }
    let mut now = SimTime::ZERO;
    let t0 = Instant::now();
    for i in 0..iters {
        now = now.after(250_000 + (i % 7) * 50_000);
        llc.advance(now, (i % 2) as usize);
    }
    let secs = t0.elapsed().as_secs_f64();
    // Observable so the loop can't be dead-code-eliminated.
    assert!(llc.pressure() > 0.0);
    Micro {
        name: "llc_advance",
        unit: "advances",
        units: iters,
        secs,
    }
}

/// Fleet steady-state step rate: a churned 16-host cluster of vSched
/// guests under the probe-aware policy, counting simulation events
/// dispatched across all hosts per wall second. Pinned to one worker so
/// the row stays comparable across runners and releases — the `fleet`
/// rows below carry the serial-vs-pool comparison.
fn bench_fleet_step_rate(sim_secs: u64) -> Micro {
    let spec = fleet::FleetSpec::small(16, 4, sim_secs);
    let mut c = fleet::Cluster::with_threads(
        spec,
        fleet::GuestMode::Vsched,
        fleet::policy_by_name("probe-aware").expect("registered policy"),
        1,
        NonZeroUsize::MIN,
    );
    let t0 = Instant::now();
    let s = c.run();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(s.violations, 0, "bench run must satisfy the fleet laws");
    assert!(s.placed > 0, "churn must place VMs");
    Micro {
        name: "fleet_step_rate",
        unit: "events",
        units: c.events_dispatched(),
        secs,
    }
}

/// One fleet-size point of the sharded-stepping comparison.
struct FleetRow {
    hosts: usize,
    horizon_secs: u64,
    arrival_mean_ms: u64,
    events: u64,
    serial_secs: f64,
    parallel_secs: f64,
    /// Effective workers in the parallel run (pool size capped at hosts).
    workers: usize,
}

impl FleetRow {
    fn serial_per_sec(&self) -> f64 {
        self.events as f64 / self.serial_secs.max(1e-12)
    }
    fn parallel_per_sec(&self) -> f64 {
        self.events as f64 / self.parallel_secs.max(1e-12)
    }
}

/// Steps the same churned vSched/probe-aware fleet twice — serial, then
/// on the auto-sized stepping pool — and asserts the runs are
/// indistinguishable (same events dispatched, same summary) before
/// reporting the wall-clock ratio.
fn bench_fleet_cluster(hosts: usize, horizon_secs: u64) -> FleetRow {
    let mut spec = fleet::FleetSpec::small(hosts, 4, horizon_secs);
    // Hold per-host placement pressure constant as the fleet grows: the
    // 16-host row keeps the historical 250 ms mean interarrival, larger
    // fleets arrive proportionally faster (floored at 4 ms).
    spec.arrival_mean_ns = (250 * MS * 16 / hosts as u64).max(4 * MS);
    let run = |workers: NonZeroUsize| {
        let mut c = fleet::Cluster::with_threads(
            spec.clone(),
            fleet::GuestMode::Vsched,
            fleet::policy_by_name("probe-aware").expect("registered policy"),
            1,
            workers,
        );
        let t0 = Instant::now();
        let s = c.run();
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(s.violations, 0, "bench run must satisfy the fleet laws");
        (s, c.events_dispatched(), secs, c.effective_workers())
    };
    let (ss, serial_events, serial_secs, _) = run(NonZeroUsize::MIN);
    let (ps, parallel_events, parallel_secs, workers) = run(fleet::default_fleet_threads());
    assert_eq!(
        serial_events, parallel_events,
        "parallel stepping dispatched different events at {hosts} hosts"
    );
    assert_eq!(
        (ss.admitted, ss.placed, ss.completed, ss.trace_events),
        (ps.admitted, ps.placed, ps.completed, ps.trace_events),
        "parallel stepping summary diverged from serial at {hosts} hosts"
    );
    assert_eq!(
        (ss.p99_ms.to_bits(), ss.mean_util.to_bits()),
        (ps.p99_ms.to_bits(), ps.mean_util.to_bits()),
        "parallel stepping floats diverged from serial at {hosts} hosts"
    );
    FleetRow {
        hosts,
        horizon_secs,
        arrival_mean_ms: spec.arrival_mean_ns / MS,
        events: serial_events,
        serial_secs,
        parallel_secs,
        workers,
    }
}

/// One complete quick-scale figure: simulated seconds per wall second.
fn bench_figure_fig03() -> Micro {
    let t0 = Instant::now();
    let fig = experiments::fig03::run(42, Scale::Quick);
    let secs = t0.elapsed().as_secs_f64();
    assert!(fig.improvement() > 0.0);
    // Two modes at quick scale's 5 simulated seconds each.
    Micro {
        name: "figure_fig03_quick",
        unit: "simulated_secs",
        units: 10,
        secs,
    }
}

struct SuiteTiming {
    serial_secs: f64,
    parallel_secs: f64,
    workers: usize,
    jobs: usize,
    cells: usize,
}

/// The full suite, serial then parallel with an auto-sized pool.
fn bench_suite(scale: Scale) -> SuiteTiming {
    let serial = run_suite(&SuiteOptions {
        jobs: 1,
        scale,
        ..SuiteOptions::default()
    })
    .expect("unfiltered suite always matches");
    let parallel = run_suite(&SuiteOptions {
        jobs: 0,
        scale,
        ..SuiteOptions::default()
    })
    .expect("unfiltered suite always matches");
    for (s, p) in serial.reports.iter().zip(&parallel.reports) {
        assert_eq!(
            s.output, p.output,
            "suite output diverged between serial and parallel on {}",
            s.name
        );
    }
    SuiteTiming {
        serial_secs: serial.wall_secs,
        parallel_secs: parallel.wall_secs,
        workers: parallel.workers,
        jobs: parallel.reports.len(),
        cells: parallel.reports.iter().map(|r| r.cells).sum(),
    }
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

fn main() {
    let mut scale = Scale::from_env();
    let mut out = format!("{}/../../BENCH_vsched.json", env!("CARGO_MANIFEST_DIR"));
    let mut skip_suite = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("bad --scale {v:?} (smoke|quick|paper)");
                    std::process::exit(2);
                });
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--skip-suite" => skip_suite = true,
            other => {
                eprintln!("unknown flag: {other} (--scale, --out, --skip-suite)");
                std::process::exit(2);
            }
        }
    }

    // Sized so each micro bench runs long enough to time stably (hundreds
    // of ms) but the whole pass stays CI-friendly.
    eprintln!("# micro benches (scale-independent)");
    let micros = [
        bench_hostsim_dispatch(30),
        bench_guest_context_switch(30),
        bench_pelt_update(20_000_000),
        bench_llc_advance(5_000_000),
        bench_fleet_step_rate(10),
        bench_figure_fig03(),
    ];
    for m in &micros {
        eprintln!(
            "#   {:<22} {:>12} {} in {:>7.3}s = {:>14.0} /s",
            m.name,
            m.units,
            m.unit,
            m.secs,
            m.per_sec()
        );
    }

    eprintln!("# fleet cluster stepping, serial vs pool");
    let fleet_rows = [
        bench_fleet_cluster(16, 10),
        bench_fleet_cluster(64, 4),
        bench_fleet_cluster(256, 2),
        bench_fleet_cluster(1000, 1),
    ];
    for r in &fleet_rows {
        if r.workers > 1 {
            eprintln!(
                "#   {:>4} hosts {:>10} events: serial {:>13.0} /s, pool({}) {:>13.0} /s = {:.2}x",
                r.hosts,
                r.events,
                r.serial_per_sec(),
                r.workers,
                r.parallel_per_sec(),
                r.serial_secs / r.parallel_secs.max(1e-9)
            );
        } else {
            // Same convention as the suite row below: on a single
            // effective core a "speedup" only measures pool overhead.
            eprintln!(
                "#   {:>4} hosts {:>10} events: serial {:>13.0} /s, pool(1) {:>13.0} /s \
                 (speedup skipped: single effective core)",
                r.hosts,
                r.events,
                r.serial_per_sec(),
                r.parallel_per_sec(),
            );
        }
    }

    let suite = if skip_suite {
        None
    } else {
        eprintln!("# suite ({} scale), serial then parallel...", scale.label());
        let s = bench_suite(scale);
        if s.workers > 1 {
            eprintln!(
                "#   suite: {} jobs / {} cells, serial {:.2}s, parallel {:.2}s on {} workers = {:.2}x",
                s.jobs,
                s.cells,
                s.serial_secs,
                s.parallel_secs,
                s.workers,
                s.serial_secs / s.parallel_secs.max(1e-9)
            );
        } else {
            // One effective core: "parallel" ran on a single worker, so a
            // speedup figure would only measure pool overhead. Skip it
            // rather than publish a lying ~1.0x row.
            eprintln!(
                "#   suite: {} jobs / {} cells, serial {:.2}s, parallel {:.2}s on 1 worker \
                 (speedup skipped: single effective core)",
                s.jobs, s.cells, s.serial_secs, s.parallel_secs,
            );
        }
        Some(s)
    };

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"vsched-bench-v1\",");
    let _ = writeln!(j, "  \"scale\": \"{}\",", scale.label());
    let _ = writeln!(j, "  \"micro\": {{");
    for (i, m) in micros.iter().enumerate() {
        let comma = if i + 1 < micros.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    \"{}\": {{\"unit\": \"{}\", \"units\": {}, \"secs\": {}, \"per_sec\": {}}}{comma}",
            m.name,
            m.unit,
            m.units,
            json_f(m.secs),
            json_f(m.per_sec())
        );
    }
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"fleet\": {{");
    let _ = writeln!(
        j,
        "    \"note\": \"sharded host stepping (per-epoch barriers); per-host scratch \
         (utilization series, placement host views) is preallocated at cluster \
         construction — the pre-preallocation 16-host serial baseline was \
         2677444 events/sec\","
    );
    let _ = writeln!(j, "    \"rows\": [");
    for (i, r) in fleet_rows.iter().enumerate() {
        let comma = if i + 1 < fleet_rows.len() { "," } else { "" };
        let speedup = if r.workers > 1 {
            format!(
                "\"speedup\": {}",
                json_f(r.serial_secs / r.parallel_secs.max(1e-9))
            )
        } else {
            "\"speedup\": null, \"speedup_note\": \"skipped: single effective core, \
             stepping pool had 1 worker\""
                .to_string()
        };
        let _ = writeln!(
            j,
            "      {{\"hosts\": {}, \"horizon_secs\": {}, \"arrival_mean_ms\": {}, \
             \"events\": {}, \"serial_secs\": {}, \"serial_per_sec\": {}, \
             \"parallel_secs\": {}, \"parallel_per_sec\": {}, \"workers\": {}, {speedup}}}{comma}",
            r.hosts,
            r.horizon_secs,
            r.arrival_mean_ms,
            r.events,
            json_f(r.serial_secs),
            json_f(r.serial_per_sec()),
            json_f(r.parallel_secs),
            json_f(r.parallel_per_sec()),
            r.workers,
        );
    }
    let _ = writeln!(j, "    ]");
    let _ = writeln!(j, "  }},");
    match &suite {
        Some(s) => {
            let _ = writeln!(j, "  \"suite\": {{");
            let _ = writeln!(j, "    \"jobs\": {},", s.jobs);
            let _ = writeln!(j, "    \"cells\": {},", s.cells);
            let _ = writeln!(j, "    \"workers\": {},", s.workers);
            let _ = writeln!(j, "    \"serial_wall_secs\": {},", json_f(s.serial_secs));
            let _ = writeln!(
                j,
                "    \"parallel_wall_secs\": {},",
                json_f(s.parallel_secs)
            );
            if s.workers > 1 {
                let _ = writeln!(
                    j,
                    "    \"speedup\": {}",
                    json_f(s.serial_secs / s.parallel_secs.max(1e-9))
                );
            } else {
                let _ = writeln!(j, "    \"speedup\": null,");
                let _ = writeln!(
                    j,
                    "    \"speedup_note\": \"skipped: single effective core, \
                     parallel pool had 1 worker\""
                );
            }
            let _ = writeln!(j, "  }}");
        }
        None => {
            let _ = writeln!(j, "  \"suite\": null");
        }
    }
    let _ = writeln!(j, "}}");

    std::fs::write(&out, &j).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("# wrote {out}");
}
