//! Criterion micro-benchmarks of the simulator's hot paths.
//!
//! These guard the *wall-clock* performance of the reproduction itself:
//! scheduler-tick handling, wake placement, the event queue, and a full
//! machine-second of simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use guestos::{GuestConfig, GuestOs, Platform, SpawnSpec, TaskAction, TaskId, Workload};
use hostsim::{HostSpec, ScenarioBuilder, VmSpec};
use simcore::{EventQueue, SimTime};
use std::hint::black_box;

/// Simple spinner workload reused across benches.
struct Spin(usize);

impl Workload for Spin {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        for _ in 0..self.0 {
            let t = guest.spawn(plat, SpawnSpec::normal(guest.kern.cfg.nr_vcpus));
            guest.wake_task(plat, t, None);
        }
    }
    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: u64) {}
    fn next_action(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: TaskId) -> TaskAction {
        TaskAction::Compute { work: 1.0e18 }
    }
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_post_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1000u64 {
                q.post(SimTime::from_ns((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });
}

fn bench_machine_second(c: &mut Criterion) {
    c.bench_function("simulate_16vcpu_second", |b| {
        b.iter(|| {
            let (bld, vm) = ScenarioBuilder::new(HostSpec::flat(16), 1).vm(VmSpec::pinned(16, 0));
            let mut m = bld.build();
            m.set_workload(vm, Box::new(Spin(16)));
            m.start();
            m.run_until(SimTime::from_secs(1));
            black_box(m.vms[vm].cycles.value())
        })
    });
}

fn bench_vsched_machine_second(c: &mut Criterion) {
    c.bench_function("simulate_16vcpu_second_vsched", |b| {
        b.iter(|| {
            let (bld, vm) = ScenarioBuilder::new(HostSpec::flat(16), 1).vm(VmSpec::pinned(16, 0));
            let mut m = bld.build();
            m.set_workload(vm, Box::new(Spin(16)));
            m.with_vm(vm, |g, p| {
                vsched::install(g, p, vsched::VschedConfig::full())
            });
            m.start();
            m.run_until(SimTime::from_secs(1));
            black_box(m.vms[vm].cycles.value())
        })
    });
}

fn bench_wake_select(c: &mut Criterion) {
    // Measure wake placement cost on a loaded 32-vCPU guest.
    let cfg = GuestConfig::new(32);
    c.bench_function("wake_place_32vcpu", |b| {
        let (bld, vm) = ScenarioBuilder::new(HostSpec::new(2, 16, 1), 2).vm(VmSpec::pinned(32, 0));
        let mut m = bld.build();
        m.set_workload(vm, Box::new(Spin(24)));
        m.start();
        m.run_until(SimTime::from_ms(100));
        let _ = &cfg;
        b.iter(|| {
            m.with_vm(vm, |g, p| {
                let t = g.spawn(p, SpawnSpec::normal(32));
                let now = p.now();
                black_box(g.kern.select_cpu_fair(p, t, now))
            })
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_machine_second, bench_vsched_machine_second, bench_wake_select
);
criterion_main!(micro);
