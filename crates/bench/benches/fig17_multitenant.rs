//! Bench target regenerating Figure 17: vSched in multi-tenant hosts.
//!
//! Run with `cargo bench -p vsched-bench --bench fig17_multitenant`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig17, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig17::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
