//! Bench target regenerating Figure 19: overall improvement on the hpvm.
//!
//! Run with `cargo bench -p vsched-bench --bench fig19_hpvm`; set
//! `VSCHED_SCALE=paper` for longer runs.

use experiments::fig18_19::{run, ProfileKind};
use experiments::Scale;

fn main() {
    let started = std::time::Instant::now();
    let result = run(ProfileKind::Hpvm, 42, Scale::from_env());
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
