//! Bench target regenerating Figure 13: LLC-aware optimizations with vtop.
//!
//! Run with `cargo bench -p vsched-bench --bench fig13_vtop_llc`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig13, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig13::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
