//! Bench target regenerating Figure 10: accuracy of vcap and vtop.
//!
//! Run with `cargo bench -p vsched-bench --bench fig10_vprobers`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig10, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig10::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
