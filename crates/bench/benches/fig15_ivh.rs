//! Bench target regenerating Figure 15: increased throughput with ivh.
//!
//! Run with `cargo bench -p vsched-bench --bench fig15_ivh`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig15, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig15::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
