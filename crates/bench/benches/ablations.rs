//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. vcap EMA half-life sweep — smoothness vs responsiveness of the
//!    capacity estimate (extends Figure 10a).
//! 2. rwc straggler-threshold sweep — how aggressive hiding should be.
//! 3. vtop timeout-extension on/off — misclassification risk vs probing
//!    time (extends Table 2).
//! 4. probed vs oracle abstraction — what guest-side probing gives up
//!    relative to hypervisor-exported truth (the XPV/CPS comparison of the
//!    paper's Discussion).

use experiments::profiles::rcvm;
use experiments::Scale;
use guestos::VcpuId;
use hostsim::{HostSpec, ScenarioBuilder, ScriptAction, VmSpec};
use metrics::Table;
use simcore::{SimRng, SimTime};
use vsched::{Tunables, VschedConfig};
use workloads::{build, work_ms, Stressor};

/// EMA half-life sweep: tracking error and migration churn after a
/// capacity step.
fn ema_sweep(scale: Scale) {
    println!("Ablation 1: vcap EMA half-life (capacity step at t/2)");
    let mut t = Table::new(&["half-life (samples)", "settling samples", "final error"]);
    for half_life in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let secs = scale.secs(16, 40);
        let (b, vm) = ScenarioBuilder::new(HostSpec::flat(2), 9).vm(VmSpec::pinned(2, 0));
        let mut m = b.build();
        m.at(
            SimTime::from_secs(secs / 2),
            ScriptAction::SetFreq {
                core: 0,
                factor: 0.5,
            },
        );
        let (wl, _s) = Stressor::new(2, work_ms(10.0));
        m.set_workload(vm, Box::new(wl));
        let mut cfg = VschedConfig::probers_only();
        cfg.tunables = Tunables {
            vcap_ema_half_life: half_life,
            ..Tunables::paper()
        };
        m.with_vm(vm, |g, p| vsched::install(g, p, cfg));
        m.start();
        // Sample the estimate each second after the step.
        let mut settled_after = None;
        for s in (secs / 2 + 1)..=secs {
            m.run_until(SimTime::from_secs(s));
            let est = m.vms[vm].guest.kern.vcpus[0].cap_override.unwrap_or(1024.0);
            if settled_after.is_none() && (est - 512.0).abs() / 512.0 < 0.1 {
                settled_after = Some(s - secs / 2);
            }
        }
        let final_est = m.vms[vm].guest.kern.vcpus[0].cap_override.unwrap_or(1024.0);
        t.row_owned(vec![
            format!("{half_life}"),
            settled_after
                .map(|s| s.to_string())
                .unwrap_or_else(|| ">window".into()),
            format!("{:.1}%", 100.0 * (final_est - 512.0).abs() / 512.0),
        ]);
    }
    println!("{t}");
}

/// Straggler-threshold sweep on the rcvm with a barrier workload.
fn straggler_sweep(scale: Scale) {
    println!("Ablation 2: rwc straggler threshold (barnes on rcvm)");
    let mut t = Table::new(&["threshold (x mean)", "rounds/s"]);
    for factor in [0.0, 0.05, 0.1, 0.3, 0.5] {
        let secs = scale.secs(6, 20);
        let mut p = rcvm(11);
        let (wl, h) = build("barnes", 12, SimRng::new(3));
        p.machine.set_workload(p.vm, wl);
        let mut cfg = VschedConfig::enhanced_cfs();
        cfg.tunables.rwc_straggler_factor = factor;
        let m = &mut p.machine;
        m.with_vm(p.vm, |g, pl| vsched::install(g, pl, cfg));
        m.start();
        let dur = SimTime::from_secs(secs);
        m.run_until(dur);
        t.row_owned(vec![format!("{factor}"), format!("{:.1}", h.rate(dur))]);
    }
    println!("{t}");
}

/// vtop timeout extensions: probing time and stacking accuracy.
fn vtop_extension_sweep(scale: Scale) {
    println!("Ablation 3: vtop timeout extensions (8-vCPU topology with stacking)");
    let mut t = Table::new(&["max extensions", "full probe", "stacking detected"]);
    for max_ext in [0u8, 1, 3] {
        let secs = scale.secs(5, 10);
        let host = HostSpec::new(2, 2, 2);
        let (b, vm) = ScenarioBuilder::new(host, 13).vm(VmSpec {
            nr_vcpus: 8,
            pinning: hostsim::Pinning::OneToOne(vec![0, 1, 2, 3, 4, 5, 6, 6]),
            weight: 1024,
            bandwidth: None,
            guest_cfg: None,
        });
        let mut m = b.build();
        let (wl, _s) = Stressor::new(4, work_ms(5.0));
        m.set_workload(vm, Box::new(wl));
        let mut cfg = VschedConfig::probers_only();
        cfg.tunables.vtop_max_extensions = max_ext;
        m.with_vm(vm, |g, p| vsched::install(g, p, cfg));
        m.start();
        m.run_until(SimTime::from_secs(secs));
        let vs = vsched::instance(&mut m.vms[vm].guest).expect("installed");
        let stacked_found = vs
            .vtop
            .topo
            .as_ref()
            .map(|t| t.is_stacked(VcpuId(6)) && t.is_stacked(VcpuId(7)))
            .unwrap_or(false);
        t.row_owned(vec![
            max_ext.to_string(),
            metrics::fmt_ns(vs.vtop.last_full_ns.unwrap_or(0)),
            stacked_found.to_string(),
        ]);
    }
    println!("{t}");
}

/// Probed (enhanced CFS) vs oracle (paravirt-exported) abstraction.
fn oracle_vs_probed(scale: Scale) {
    println!("Ablation 4: probed vs oracle abstraction on the rcvm");
    let mut t = Table::new(&["benchmark", "CFS", "enhanced CFS (probed)", "oracle"]);
    for bench in ["barnes", "canneal", "masstree"] {
        let secs = scale.secs(8, 25);
        let run = |mode: u8| -> f64 {
            let mut p = rcvm(21);
            let (wl, h) = workloads::build_loaded(bench, 12, 0.28, SimRng::new(5));
            p.machine.set_workload(p.vm, wl);
            match mode {
                1 => {
                    let m = &mut p.machine;
                    m.with_vm(p.vm, |g, pl| {
                        vsched::install(g, pl, VschedConfig::enhanced_cfs())
                    });
                }
                2 => experiments::oracle::install(&mut p.machine, p.vm),
                _ => {}
            }
            p.machine.start();
            let dur = SimTime::from_secs(secs);
            p.machine.run_until(dur);
            if workloads::is_latency_bench(bench) {
                1e9 / h.p95_ns().unwrap_or(1).max(1) as f64
            } else {
                h.rate(dur)
            }
        };
        let cfs = run(0);
        let probed = run(1);
        let oracle = run(2);
        t.row_owned(vec![
            bench.into(),
            "100.0".into(),
            format!("{:.1}", 100.0 * probed / cfs.max(1e-12)),
            format!("{:.1}", 100.0 * oracle / cfs.max(1e-12)),
        ]);
    }
    println!("{t}");
}

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    ema_sweep(scale);
    println!();
    straggler_sweep(scale);
    println!();
    vtop_extension_sweep(scale);
    println!();
    oracle_vs_probed(scale);
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
