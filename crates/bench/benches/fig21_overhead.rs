//! Bench target regenerating Figure 21: overhead of vSched.
//!
//! Run with `cargo bench -p vsched-bench --bench fig21_overhead`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig21, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig21::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
