//! Bench target regenerating Figure 4: deficient work conservation.
//!
//! Run with `cargo bench -p vsched-bench --bench fig04_work_conservation`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig04, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig04::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
