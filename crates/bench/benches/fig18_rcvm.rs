//! Bench target regenerating Figure 18: overall improvement on the rcvm.
//!
//! Run with `cargo bench -p vsched-bench --bench fig18_rcvm`; set
//! `VSCHED_SCALE=paper` for longer runs.

use experiments::fig18_19::{run, ProfileKind};
use experiments::Scale;

fn main() {
    let started = std::time::Instant::now();
    let result = run(ProfileKind::Rcvm, 42, Scale::from_env());
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
