//! Bench target regenerating Table 4: activity-aware vs unaware ivh.
//!
//! Run with `cargo bench -p vsched-bench --bench table4_ivh_activity`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{table4, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = table4::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
