//! Bench target regenerating Figure 3: the stalled running task and proactive migration.
//!
//! Run with `cargo bench -p vsched-bench --bench fig03_stalled_task`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig03, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig03::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
