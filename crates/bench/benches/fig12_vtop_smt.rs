//! Bench target regenerating Figure 12: SMT-aware scheduling with vtop.
//!
//! Run with `cargo bench -p vsched-bench --bench fig12_vtop_smt`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig12, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig12::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
