//! Bench target regenerating Figure 20: cost of vSched.
//!
//! Run with `cargo bench -p vsched-bench --bench fig20_cost`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig20, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig20::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
