//! Bench target regenerating Figure 14: latency reduction with bvs.
//!
//! Run with `cargo bench -p vsched-bench --bench fig14_bvs`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig14, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig14::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
