//! Bench target regenerating Table 3: Masstree latency breakdown.
//!
//! Run with `cargo bench -p vsched-bench --bench table3_masstree`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{table3, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = table3::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
