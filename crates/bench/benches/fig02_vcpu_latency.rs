//! Bench target regenerating Figure 2: impact of vCPU latency on latency-sensitive workloads.
//!
//! Run with `cargo bench -p vsched-bench --bench fig02_vcpu_latency`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig02, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig02::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
