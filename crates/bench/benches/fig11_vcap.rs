//! Bench target regenerating Figure 11: impact of accurate vCPU capacity.
//!
//! Run with `cargo bench -p vsched-bench --bench fig11_vcap`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig11, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig11::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
