//! Bench target regenerating Table 2: vtop probing time.
//!
//! Run with `cargo bench -p vsched-bench --bench table2_vtop_time`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{table2, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = table2::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
