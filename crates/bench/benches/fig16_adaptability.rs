//! Bench target regenerating Figure 16: adaptability of vSched.
//!
//! Run with `cargo bench -p vsched-bench --bench fig16_adaptability`; set
//! `VSCHED_SCALE=paper` for durations closer to the paper's.

use experiments::{fig16, Scale};

fn main() {
    let scale = Scale::from_env();
    let started = std::time::Instant::now();
    let result = fig16::run(42, scale);
    println!("{result}");
    println!("[completed in {:.1?} wall time]", started.elapsed());
}
