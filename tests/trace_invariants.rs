//! Trace-driven invariant gates on the tier-1 figure experiments.
//!
//! Each checked run replays a figure with the streaming conservation-law
//! checker attached: a task runs on at most one vCPU, steal accounting
//! closes every waiting window exactly, delivered work never exceeds
//! capacity × active time, per-vCPU `min_vruntime` is monotonic, and every
//! ivh pull attempt resolves exactly once. A violation here means the
//! simulator broke a scheduler law, not that a figure's numbers drifted.

use vsched_repro::experiments::{fig03, fig11, fig15, Scale};
use vsched_repro::hostsim::{ChaosSpec, FaultPlan, HostSpec, ScenarioBuilder, VmSpec};
use vsched_repro::simcore::time::{MS, SEC};
use vsched_repro::simcore::SimTime;
use vsched_repro::trace::{
    chrome_trace, validate_json, CheckReport, Collector, EventKind, FaultClass, TraceSink,
};
use vsched_repro::vsched::VschedConfig;
use vsched_repro::workloads;

fn assert_clean(figure: &str, reports: &[CheckReport]) {
    for (i, r) in reports.iter().enumerate() {
        assert!(r.events > 0, "{figure} run {i} produced no trace events");
        assert!(r.ok(), "{figure} run {i} violated an invariant:\n{r}");
    }
}

#[test]
fn fig03_invariants_hold() {
    let (fig, reports) = fig03::run_checked(42, Scale::Quick);
    assert_clean("fig03", &reports);
    // The checked run is still the real experiment.
    assert!(fig.improvement() > 1.2, "improvement {}", fig.improvement());
}

#[test]
fn fig11_invariants_hold() {
    let (_, reports) = fig11::run_checked(42, Scale::Quick);
    assert_clean("fig11", &reports);
}

#[test]
fn fig15_cell_invariants_hold() {
    // One ivh-enabled cell exercises the full pull lifecycle (attempt /
    // complete / abandon) under the checker.
    let (rate, report) = fig15::run_cell_checked("canneal", 4, true, 4, 42);
    assert!(rate > 0.0);
    assert_clean("fig15[canneal,4,ivh]", &[report]);
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // Bit-identical figure results with the sink off (the default) and
    // with a full collector attached: emitting must never branch the
    // simulation.
    let plain = fig03::run(7, Scale::Quick);
    let (checked, _) = fig03::run_checked(7, Scale::Quick);
    assert_eq!(
        plain.default_mode.utilization.to_bits(),
        checked.default_mode.utilization.to_bits()
    );
    assert_eq!(
        plain.migration_mode.utilization.to_bits(),
        checked.migration_mode.utilization.to_bits()
    );
    assert_eq!(plain.default_mode.segments, checked.default_mode.segments);
}

#[test]
fn chrome_export_is_valid_json_with_events() {
    // A small two-VM contention scenario with full vSched, traced into a
    // ring, exported to Chrome trace-event JSON.
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(4), 42).vm(VmSpec::pinned(4, 0));
    let (b, stress_vm) = b.vm(VmSpec::pinned(4, 0));
    let mut m = b.build();
    let (_, shared) = TraceSink::shared(Collector::with_ring(1 << 16).with_checker());
    m.attach_trace(&shared);
    let (wl, _h) = workloads::build("sysbench", 2, vsched_repro::simcore::SimRng::new(1));
    m.set_workload(vm, wl);
    let (sw, _s) = workloads::Stressor::new(4, workloads::work_ms(10.0));
    m.set_workload(stress_vm, Box::new(sw));
    m.with_vm(vm, |g, p| {
        vsched_repro::vsched::install(g, p, VschedConfig::full())
    });
    m.start();
    m.run_until(SimTime::from_secs(2));

    let c = shared.borrow();
    let ring = c.ring.as_ref().expect("ring attached");
    assert!(!ring.is_empty(), "no events captured");
    let json = chrome_trace(ring);
    validate_json(&json).expect("exporter emits well-formed JSON");
    assert!(json.contains("\"traceEvents\""));
    // Schedstat aggregates ride along on the same collector.
    let stats = c.stats.render(SimTime::from_secs(2));
    assert!(stats.contains("vcpu"), "schedstat render:\n{stats}");
    let report = c.checker.as_ref().expect("checker").report();
    assert!(report.ok(), "invariant violation:\n{report}");
}

#[test]
fn bandwidth_and_pelt_laws_fire_under_quota_churn() {
    // A QuotaChurn-only fault plan drives the two newest checker laws
    // through their observable events: every quota change emits a
    // `BandwidthSet` (quota ≤ period or violation), the resulting
    // throttle/unthrottle cycles and idle gaps produce `PeltDecay` records
    // (load must not grow across an idle decay), and each injection is
    // annotated with a `FaultInjected` marker. The test asserts all three
    // actually appear — a law that never sees its events gates nothing.
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(4), 5).vm(VmSpec::pinned(4, 0));
    let mut m = b.build();
    let mut spec = ChaosSpec::for_pinned_vm(vm, 4, 3 * SEC).mean_interval(300 * MS);
    spec.classes = vec![FaultClass::QuotaChurn];
    let plan = FaultPlan::generate(5, &spec);
    plan.apply(&mut m);
    let (_, shared) = TraceSink::shared(Collector::with_ring(1 << 18).with_checker());
    m.attach_trace(&shared);
    let (wl, _h) = workloads::build("sysbench", 4, vsched_repro::simcore::SimRng::new(5));
    m.set_workload(vm, wl);
    m.start();
    m.run_until(SimTime::from_secs(4));

    let c = shared.borrow();
    let ring = c.ring.as_ref().expect("ring attached");
    let (mut bandwidth, mut pelt, mut faults) = (0u64, 0u64, 0u64);
    for ev in ring.iter() {
        match ev.kind {
            EventKind::BandwidthSet { .. } => bandwidth += 1,
            EventKind::PeltDecay { .. } => pelt += 1,
            EventKind::FaultInjected { .. } => faults += 1,
            _ => {}
        }
    }
    assert!(bandwidth > 0, "quota churn emitted no BandwidthSet events");
    assert!(pelt > 0, "no PeltDecay events despite throttling gaps");
    assert!(faults > 0, "fault plan injected nothing");
    let report = c.checker.as_ref().expect("checker").report();
    assert!(
        report.ok(),
        "invariant violation under quota churn:\n{report}"
    );
}

#[test]
fn wake_latency_breakdown_pairs_wakeups() {
    // The latency-breakdown exporter rides on the same collector as
    // schedstat: a latency-serving workload under contention must produce
    // completed TaskWake→ContextSwitch pairs with plausible delays.
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(4), 42).vm(VmSpec::pinned(4, 0));
    let (b, stress_vm) = b.vm(VmSpec::pinned(4, 0));
    let mut m = b.build();
    let (_, shared) = TraceSink::shared(Collector::default());
    m.attach_trace(&shared);
    let (wl, _h) = workloads::build_latency(
        "silo",
        4,
        2.0 * 1_000_000.0,
        false,
        vsched_repro::simcore::SimRng::new(9),
    );
    m.set_workload(vm, wl);
    let (sw, _s) = workloads::Stressor::new(4, workloads::work_ms(10.0));
    m.set_workload(stress_vm, Box::new(sw));
    m.start();
    m.run_until(SimTime::from_secs(2));

    let c = shared.borrow();
    let wl = &c.wake_latency;
    assert!(wl.pairs() > 100, "only {} wake→run pairs", wl.pairs());
    // Every completed delay fits inside the run window, and at least one
    // wakeup on some vCPU actually waited (contention guarantees queueing).
    let mut max_delay = 0;
    for vcpu in 0..4u16 {
        if let Some(h) = wl.vcpu(0, vcpu) {
            assert!(h.max() <= 2_000_000_000, "delay beyond window: {}", h.max());
            max_delay = max_delay.max(h.max());
        }
    }
    assert!(max_delay > 0, "no wakeup ever waited despite contention");
    let text = wl.render();
    assert!(text.contains("# cpu<vm>/<vcpu> pairs"), "{text}");
    assert!(text.lines().any(|l| l.starts_with("cpu0/")), "{text}");
}
