//! Adversary gates: scheduler gaming, domain confinement, determinism.
//!
//! Every test drives a real `Machine` through a seed-generated
//! [`AttackPlan`] with the streaming invariant checker attached. The
//! gates:
//!
//! * each attack archetype in isolation leaves every traced invariant
//!   intact — under the sampled proportional host *and* the domain
//!   schedule (whose slice-sum, cross-domain, and steal-conservation
//!   laws are only live there);
//! * the combined plan (all archetypes interleaved) stays law-clean
//!   against the hardened guest;
//! * a fixed seed replays byte-identically.
//!
//! `ADVERSARY_SEED` (used by `ci.sh adversary-smoke`) points the sweep at
//! an arbitrary seed; the failure message prints the seed so a CI hit
//! replays locally.

use vsched_repro::experiments::adversary::{self, GuestMode, HostPolicy};
use vsched_repro::workloads::{AttackKind, ATTACK_KINDS};

fn sweep_seed() -> u64 {
    std::env::var("ADVERSARY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64)
}

const SWEEP_HORIZON_SECS: u64 = 4;

#[test]
fn every_attack_kind_keeps_invariants() {
    // One archetype at a time, under both host policies: a violation here
    // pins the breakage to a single attack mechanism and host scheduler.
    let seed = sweep_seed();
    for kind in ATTACK_KINDS {
        let plan = adversary::plan_for(Some(kind), SWEEP_HORIZON_SECS, seed);
        for policy in [HostPolicy::Proportional, HostPolicy::Domain] {
            let out = adversary::run_attack(policy, GuestMode::VschedHardened, &plan, seed);
            assert!(out.trace_events > 0, "{kind:?}/{policy:?}: no trace events");
            assert_eq!(
                out.violations, 0,
                "{kind:?} under {policy:?} violated {:?} (ADVERSARY_SEED={seed})",
                out.first_law
            );
        }
    }
}

#[test]
fn combined_attack_keeps_invariants() {
    // All archetypes interleaved against the hardened guest on the
    // domain-partitioned host — the cell the shrinker's oracle replays.
    let seed = sweep_seed();
    let plan = adversary::plan_for(None, SWEEP_HORIZON_SECS, seed);
    let out = adversary::run_attack(HostPolicy::Domain, GuestMode::VschedHardened, &plan, seed);
    assert!(out.trace_events > 0);
    assert_eq!(
        out.violations, 0,
        "combined attack violated {:?} (ADVERSARY_SEED={seed})",
        out.first_law
    );
}

#[test]
fn fixed_seed_replays_byte_identically() {
    // The full outcome of an adversary cell — attack schedule and every
    // reported number — must be a pure function of the seed.
    let a = adversary::run_cell(HostPolicy::Proportional, GuestMode::VschedHardened, 4, 99);
    let b = adversary::run_cell(HostPolicy::Proportional, GuestMode::VschedHardened, 4, 99);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    let plan_a = adversary::plan_for(Some(AttackKind::DodgeRun), 4, 99);
    let plan_b = adversary::plan_for(Some(AttackKind::DodgeRun), 4, 99);
    assert_eq!(plan_a.describe(), plan_b.describe());
}
