//! Chaos gates: fault injection, graceful degradation, determinism.
//!
//! Every test drives a real `Machine` through a seed-generated
//! [`FaultPlan`] with the streaming invariant checker attached. The gates:
//!
//! * each fault class in isolation leaves every traced invariant intact
//!   (and, trivially, completes without a panic);
//! * the resilience layer's degraded mode both enters under sustained
//!   chaos and exits once the host calms down;
//! * degraded vSched is *graceful*: its p99 stays within 1.10× of vanilla
//!   CFS on the very same faulted host;
//! * a fixed seed replays byte-identically, and plans are structurally
//!   sound across a randomized seed sweep.
//!
//! `CHAOS_SEED` (used by `ci.sh chaos-smoke`) points the invariant sweep
//! at an arbitrary seed; the failure message prints the seed so a CI hit
//! replays locally.

use vsched_repro::experiments::chaos::{self, ChaosMode};
use vsched_repro::experiments::common::{check_report, checked_collector};
use vsched_repro::hostsim::{ChaosSpec, FaultPlan, HostSpec, ScenarioBuilder, VmSpec};
use vsched_repro::simcore::time::{MS, SEC};
use vsched_repro::simcore::{SimRng, SimTime};
use vsched_repro::trace::FaultClass;
use vsched_repro::vsched::{ResilCfg, VschedConfig};
use vsched_repro::workloads::{work_ms, LatencyServer, LatencyServerCfg};

/// The independently injectable fault classes (`VcpuOnline` is only ever
/// scheduled as an offline's reversal).
const CLASSES: [FaultClass; 6] = [
    FaultClass::StressorBurst,
    FaultClass::QuotaChurn,
    FaultClass::PinChange,
    FaultClass::VcpuOffline,
    FaultClass::CapacityStep,
    FaultClass::ProbeNoise,
];

/// Runs resilient vSched under a plan restricted to `classes`, returns
/// `(check report, degraded episodes incl. an open one, abandons)`.
fn run_chaos(
    seed: u64,
    classes: &[FaultClass],
    mean_interval_ns: u64,
    horizon_ns: u64,
    run_secs: u64,
    resil: ResilCfg,
) -> (vsched_repro::trace::CheckReport, u64, u64) {
    let nr = 4;
    let (b, vm) = ScenarioBuilder::new(HostSpec::flat(nr), seed).vm(VmSpec::pinned(nr, 0));
    let mut m = b.build();
    let mut spec = ChaosSpec::for_pinned_vm(vm, nr, horizon_ns).mean_interval(mean_interval_ns);
    spec.classes = classes.to_vec();
    let plan = FaultPlan::generate(seed, &spec);
    plan.apply(&mut m);
    let shared = checked_collector();
    m.attach_trace(&shared);
    let service = work_ms(0.5);
    let interarrival = service / 1024.0 / nr as f64 / 0.5;
    let (wl, _stats) = LatencyServer::new(
        LatencyServerCfg::new(nr, service, interarrival),
        SimRng::new(seed ^ 0xF1),
    );
    m.set_workload(vm, Box::new(wl));
    m.with_vm(vm, |g, p| {
        vsched_repro::vsched::install(g, p, VschedConfig::full().with_resilience(resil))
    });
    m.start();
    m.run_until(SimTime::from_secs(run_secs));
    let (episodes, abandons) = m.with_vm(vm, |g, _| {
        let vs = vsched_repro::vsched::instance(g).expect("vsched installed");
        let r = vs.resil.as_ref().expect("resilience enabled");
        (r.episodes + u64::from(r.degraded()), r.watchdog_abandons)
    });
    (check_report(&shared), episodes, abandons)
}

#[test]
fn every_fault_class_keeps_invariants() {
    // One class at a time: a violation here pins the breakage to a single
    // fault mechanism. The run itself completing is the no-panic gate.
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    for class in CLASSES {
        let (report, _, _) = run_chaos(seed, &[class], 400 * MS, 2 * SEC, 3, ResilCfg::default());
        assert!(report.events > 0, "{class:?}: no trace events");
        assert!(
            report.ok(),
            "{class:?} violated an invariant (CHAOS_SEED={seed}):\n{report}"
        );
    }
}

#[test]
fn all_fault_classes_together_keep_invariants() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let (report, _, _) = run_chaos(seed, &CLASSES, 250 * MS, 3 * SEC, 4, ResilCfg::default());
    assert!(report.events > 0);
    assert!(
        report.ok(),
        "combined chaos violated an invariant (CHAOS_SEED={seed}):\n{report}"
    );
}

#[test]
fn degraded_mode_enters_and_exits() {
    // Aggressive churn for 2 s, then 5 s of calm: the resilience layer
    // must distrust the abstraction while it lies and re-trust it after.
    // QuotaChurn + CapacityStep swing the probed capacities hard;
    // ProbeNoise corrupts the measurements themselves.
    let (report, episodes, _) = run_chaos(
        7,
        &[
            FaultClass::QuotaChurn,
            FaultClass::CapacityStep,
            FaultClass::ProbeNoise,
        ],
        120 * MS,
        2 * SEC,
        8,
        ResilCfg::default(),
    );
    assert!(
        report.ok(),
        "degradation cycle violated an invariant:\n{report}"
    );
    assert!(episodes >= 1, "sustained chaos never degraded the VM");
    // The trace checker separately enforces enter/exit alternation and a
    // truthful `after_ns`; a completed episode count (not an open flag)
    // proves at least one exit fired.
}

#[test]
fn offlined_pull_targets_are_abandoned_by_watchdog() {
    // vCPU offlining is the fault that strands ivh pulls: a pre-woken
    // target that never starts would hold its slot forever. Frequent
    // offlines plus a harvest-friendly workload must exercise the
    // watchdog path without tripping the pull-resolution invariant.
    let (report, _, _) = run_chaos(
        11,
        &[FaultClass::VcpuOffline],
        200 * MS,
        3 * SEC,
        4,
        ResilCfg::default(),
    );
    assert!(
        report.ok(),
        "offline chaos violated an invariant:\n{report}"
    );
    assert_eq!(
        report.pending_ivh, 0,
        "pulls left in flight at trace end despite the watchdog"
    );
}

#[test]
fn degraded_p99_stays_close_to_vanilla_cfs() {
    // The graceful-degradation gate: on the same faulted host, vSched
    // pinned in degraded mode must deliver a p99 within 1.10× of stock
    // CFS. Fixed seeds: this is a property of the degraded configuration
    // (bvs/ivh off, heavy probes suppressed), not of lucky noise.
    for seed in [42u64, 7, 1234] {
        let cfs = chaos::run_mode(ChaosMode::Cfs, 5, seed);
        let deg = chaos::run_mode(ChaosMode::VschedForcedDegraded, 5, seed);
        assert_eq!(cfs.violations, 0, "CFS run violated an invariant");
        assert_eq!(deg.violations, 0, "degraded run violated an invariant");
        assert!(
            deg.p99_ms <= 1.10 * cfs.p99_ms,
            "seed {seed}: degraded p99 {:.3}ms > 1.10 x CFS p99 {:.3}ms",
            deg.p99_ms,
            cfs.p99_ms
        );
    }
}

#[test]
fn fixed_seed_replays_byte_identically() {
    // The full outcome of a chaos run — plan rendering and every reported
    // number — must be a pure function of the seed.
    let a = chaos::run_mode(ChaosMode::VschedResilient, 4, 99);
    let b = chaos::run_mode(ChaosMode::VschedResilient, 4, 99);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    let (_, plan_a) = chaos::plan_for(4, 99);
    let (_, plan_b) = chaos::plan_for(4, 99);
    assert_eq!(plan_a.describe(), plan_b.describe());
}
