//! Workspace-level prober accuracy tests (Figure 10 claims) plus
//! cross-stack property tests on the simulator's conservation laws.

use vsched_repro::experiments::{fig10, Scale};
use vsched_repro::guestos::{GuestOs, Platform, SpawnSpec, TaskAction, TaskId, Workload};
use vsched_repro::hostsim::{HostSpec, ScenarioBuilder, VmSpec};
use vsched_repro::simcore::propcheck::forall;
use vsched_repro::simcore::{SimRng, SimTime};

#[test]
fn ema_capacity_tracks_the_trend() {
    let r = fig10::run(42, Scale::Quick);
    // The estimate follows each step within a few sampling periods; over
    // the run the mean error stays moderate (the EMA trades lag for
    // smoothness by design).
    assert!(
        r.tracking_error < 0.35,
        "mean tracking error {:.0}%",
        100.0 * r.tracking_error
    );
    // Late in a plateau the estimate is close.
    let last = r.samples.last().expect("samples recorded");
    assert!(
        (last.ema - last.actual).abs() / last.actual < 0.2,
        "final estimate {:.0} vs actual {:.0}",
        last.ema,
        last.actual
    );
}

#[test]
fn probed_latency_matrix_shows_figure_10b_bands() {
    let r = fig10::run(43, Scale::Quick);
    let m = &r.matrix;
    // SMT pair (0,1): single-digit ns.
    assert!(m[0][1] > 0.0 && m[0][1] < 20.0, "smt {}", m[0][1]);
    // Same socket (0,2): tens of ns.
    assert!(m[0][2] > 20.0 && m[0][2] < 80.0, "llc {}", m[0][2]);
    // Cross socket (0,4): ~100+ ns.
    assert!(m[0][4] > 80.0, "cross {}", m[0][4]);
    // Stacked pair (6,7): infinite.
    assert!(m[6][7].is_infinite(), "stacked {}", m[6][7]);
}

/// A workload of n spinners used by the property tests.
struct Spinners(usize);

impl Workload for Spinners {
    fn start(&mut self, guest: &mut GuestOs, plat: &mut dyn Platform) {
        for _ in 0..self.0 {
            let t = guest.spawn(plat, SpawnSpec::normal(guest.kern.cfg.nr_vcpus));
            guest.wake_task(plat, t, None);
        }
    }
    fn on_timer(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: u64) {}
    fn next_action(&mut self, _g: &mut GuestOs, _p: &mut dyn Platform, _t: TaskId) -> TaskAction {
        TaskAction::Compute { work: 1.0e18 }
    }
}

/// Conservation: across any host shape and task count, total delivered
/// work never exceeds host capacity, and with enough spinners it
/// saturates most of it.
#[test]
fn work_is_conserved() {
    forall(0x91, 12, |rng| {
        let cores = 1 + rng.index(5);
        let tasks = 1 + rng.index(9);
        let seed = rng.range(0, 1000);
        let (b, vm) =
            ScenarioBuilder::new(HostSpec::flat(cores), seed).vm(VmSpec::pinned(cores, 0));
        let mut m = b.build();
        m.set_workload(vm, Box::new(Spinners(tasks)));
        m.start();
        let secs = 1u64;
        m.run_until(SimTime::from_secs(secs));
        let work: f64 = (0..cores)
            .map(|i| m.vcpus[m.gv(vm, i)].delivered_work)
            .sum();
        let capacity = cores as f64 * 1024.0 * 1e9 * secs as f64;
        assert!(
            work <= capacity * 1.001,
            "work {work:.3e} > capacity {capacity:.3e}"
        );
        let usable = cores.min(tasks) as f64 * 1024.0 * 1e9 * secs as f64;
        assert!(
            work >= usable * 0.9,
            "work {work:.3e} < usable {usable:.3e}"
        );
    });
}

/// Steal accounting: a vCPU's active + steal time never exceeds wall
/// time, and on a fully contended core the split is roughly even.
#[test]
fn steal_plus_active_bounded_by_wall() {
    forall(0x92, 12, |rng| {
        let seed = rng.range(0, 1000);
        let (b, vm0) = ScenarioBuilder::new(HostSpec::flat(1), seed).vm(VmSpec::pinned(1, 0));
        let (b, vm1) = b.vm(VmSpec::pinned(1, 0));
        let mut m = b.build();
        m.set_workload(vm0, Box::new(Spinners(1)));
        m.set_workload(vm1, Box::new(Spinners(1)));
        m.start();
        m.run_until(SimTime::from_secs(1));
        let gv = m.gv(vm0, 0);
        let total = m.vcpu_steal(gv) + m.vcpu_active_ns(gv);
        assert!(total <= 1_000_000_001, "active+steal {total}");
        assert!(total >= 990_000_000, "vCPU unaccounted for: {total}");
    });
}

/// Determinism: identical seeds give identical results end to end.
#[test]
fn simulation_is_deterministic() {
    forall(0x93, 8, |rng| {
        let seed = rng.range(0, 50);
        let run = |seed: u64| -> f64 {
            let (b, vm) = ScenarioBuilder::new(HostSpec::flat(3), seed).vm(VmSpec::pinned(3, 0));
            let mut m = b.build();
            let (wl, handle) = vsched_repro::workloads::build("canneal", 3, SimRng::new(seed));
            m.set_workload(vm, wl);
            m.with_vm(vm, |g, p| {
                vsched_repro::vsched::install(g, p, vsched_repro::vsched::VschedConfig::full())
            });
            m.start();
            m.run_until(SimTime::from_ms(1500));
            handle.rate(SimTime::from_ms(1500))
        };
        assert_eq!(run(seed), run(seed));
    });
}
