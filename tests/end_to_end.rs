//! Workspace-level integration tests: the paper's headline claims, asserted
//! as *shapes* (who wins, roughly by how much) on quick-scale runs.
//!
//! Each test exercises the full stack — host simulator, guest CFS, vProbers,
//! and the vSched policies — through the public experiment drivers.

use vsched_repro::experiments::{fig03, fig04, fig11, fig14, table2, table3, table4, Scale};

#[test]
fn stalled_running_task_doubles_utilization_with_migration() {
    // Figure 3: proactive migration roughly doubles vCPU utilization.
    let r = fig03::run(42, Scale::Quick);
    assert!(
        (0.45..0.55).contains(&r.default_mode.utilization),
        "default utilization {:.2}",
        r.default_mode.utilization
    );
    assert!(
        r.improvement() > 1.7,
        "migration improvement {:.2}x (paper: ~2x)",
        r.improvement()
    );
}

#[test]
fn relaxing_work_conservation_beats_straggler_and_priority_inversion() {
    // Figure 4: non-work-conserving placement wins on problematic vCPUs.
    let r = fig04::run(42, Scale::Quick);
    // Straggler: at least one sync-intensive benchmark improves >30%
    // (paper: up to 43%).
    assert!(
        r.straggler.iter().any(|p| p.improvement() > 1.3),
        "straggler improvements: {:?}",
        r.straggler
            .iter()
            .map(|p| p.improvement())
            .collect::<Vec<_>>()
    );
    // Priority inversion: at least one benchmark improves >2x (paper: up
    // to 6.7x).
    assert!(
        r.priority_inversion.iter().any(|p| p.improvement() > 1.5),
        "priority-inversion improvements: {:?}",
        r.priority_inversion
            .iter()
            .map(|p| p.improvement())
            .collect::<Vec<_>>()
    );
    // And nothing in the non-work-conserving column collapses.
    for p in r
        .straggler
        .iter()
        .chain(&r.stacking)
        .chain(&r.priority_inversion)
    {
        assert!(p.improvement() > 0.8, "{}: {:.2}", p.bench, p.improvement());
    }
}

#[test]
fn vtop_probes_within_a_second_and_validates_faster() {
    // Table 2: sub-second probing; validation faster than full probing.
    let t = table2::run(42, Scale::Quick);
    for (label, ns) in [
        ("rcvm-full", t.rcvm_full_ns),
        ("rcvm-validate", t.rcvm_validate_ns),
        ("hpvm-full", t.hpvm_full_ns),
        ("hpvm-validate", t.hpvm_validate_ns),
    ] {
        assert!(ns > 0, "{label} did not run");
        assert!(
            ns < 1_000_000_000,
            "{label} took {ns} ns (paper: sub-second)"
        );
    }
    assert!(t.rcvm_validate_ns < t.rcvm_full_ns);
    assert!(t.hpvm_validate_ns < t.hpvm_full_ns);
    // Stacking confirmation makes rcvm validation slower than hpvm's.
    assert!(t.rcvm_validate_ns > t.hpvm_validate_ns);
}

#[test]
fn vcap_steers_to_high_capacity_vcpus_and_calms_migrations() {
    // Figure 11: the paper reports 44%→81% high-capacity residency with a
    // 32% throughput gain, and 74% fewer migrations on symmetric hosts.
    let r = fig11::run(42, Scale::Quick);
    assert!(
        r.asym_vcap.high_cap_fraction > r.asym_cfs.high_cap_fraction + 0.25,
        "high-cap residency: CFS {:.0}% vs vcap {:.0}%",
        100.0 * r.asym_cfs.high_cap_fraction,
        100.0 * r.asym_vcap.high_cap_fraction
    );
    assert!(
        r.asym_vcap.throughput > 1.2 * r.asym_cfs.throughput,
        "throughput: {:.0} vs {:.0}",
        r.asym_cfs.throughput,
        r.asym_vcap.throughput
    );
    let reduction = 1.0 - r.sym_vcap.migrations as f64 / r.sym_cfs.migrations.max(1) as f64;
    assert!(
        reduction > 0.4,
        "migration reduction {:.0}% (paper: 74%)",
        100.0 * reduction
    );
}

#[test]
fn bvs_reduces_tail_latency() {
    // Figure 14: bvs cuts p95 (paper: 42% on average).
    let r = fig14::run(42, Scale::Quick);
    let mean = r.mean_reduction();
    assert!(
        mean > 0.15,
        "mean p95 reduction {:.0}% (paper: 42%)",
        100.0 * mean
    );
}

#[test]
fn bvs_state_check_helps_with_best_effort_tasks() {
    // Table 3's ablation: with best-effort tasks, full bvs beats both no
    // bvs and the no-state-check variant on queue time.
    let t = table3::run(42, Scale::Quick);
    let (no_bvs, _no_state, bvs) = t.with_be;
    assert!(
        bvs.e2e_ns < no_bvs.e2e_ns,
        "bvs e2e {} vs no-bvs {}",
        bvs.e2e_ns,
        no_bvs.e2e_ns
    );
}

#[test]
fn ivh_prewake_beats_direct_migration_at_low_thread_counts() {
    // Table 4: activity-aware migration wins where harvesting happens.
    let t = table4::run(42, Scale::Quick);
    assert!(
        t.speedup(0) > 1.1,
        "1-thread speedup {:.2}x (paper: ~1.17x)",
        t.speedup(0)
    );
    let (attempts, completed, _abandoned) = t.aware_stats;
    assert!(attempts > 0, "ivh never attempted a harvest");
    assert!(completed > 0, "ivh never completed a harvest");
}
